"""Metric collection for simulation runs: the observability registry.

Every experiment in the paper reduces to the same questions — how many
bytes crossed each segment of the data path, how busy each device was,
and how long the query took — so the tracer is organized around three
kinds of records:

* **counters** — monotonically increasing totals (bytes per link,
  chunks per channel, cache hits, dollars billed);
* **series** — (time, value) samples (queue occupancy over time);
* **spans** — named intervals (per-stage busy periods), from which
  utilization and critical-path summaries are derived.

A single :class:`Trace` is threaded through a fabric.  On top of the
raw records it derives the quantities reports need: per-span busy
time and utilization (:meth:`Trace.busy_time`,
:meth:`Trace.utilization`), per-device utilization from the
``device.<name>.busy_s`` counters every :class:`~repro.hardware.device.
Device` maintains (:meth:`Trace.device_utilization`), per-link
byte/chunk totals (:meth:`Trace.link_report`), and a critical-path
summary ranking span names by total busy time
(:meth:`Trace.critical_path`).

Traces serialize to a schema-versioned plain dict
(:meth:`Trace.to_dict` / :meth:`Trace.from_dict`) so benchmark
harnesses can persist them as JSON.

The trace keeps a *clock watermark* — the largest simulated time it
has seen — so that spans still open at report time have a well-defined
duration (they are measured up to the watermark instead of raising).
A mid-run report therefore never crashes a benchmark.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Trace", "Span", "TRACE_SCHEMA"]

TRACE_SCHEMA = "repro.trace/v1"
"""Schema identifier embedded in serialized traces."""


@dataclass
class Span:
    """A named interval of simulated time.

    ``end is None`` marks a span that is still open.  An open span's
    ``duration`` is measured up to the owning trace's clock watermark
    (0.0 for an orphan span), so reports taken mid-run never raise.
    """

    name: str
    start: float
    end: Optional[float] = None
    trace: Optional["Trace"] = field(default=None, repr=False,
                                     compare=False)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is not None:
            return self.end - self.start
        if self.trace is not None:
            return max(self.trace.clock - self.start, 0.0)
        return 0.0


@dataclass
class Trace:
    """Accumulates counters, series and spans during a run."""

    counters: dict[str, float] = field(
        default_factory=lambda: defaultdict(float))
    series: dict[str, list[tuple[float, float]]] = field(
        default_factory=lambda: defaultdict(list))
    spans: dict[str, list[Span]] = field(
        default_factory=lambda: defaultdict(list))
    clock: float = 0.0

    # -- recording -------------------------------------------------------

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment a counter."""
        self.counters[counter] += amount

    def tick(self, time: float) -> None:
        """Advance the clock watermark (never moves backwards)."""
        if time > self.clock:
            self.clock = time

    def sample(self, series: str, time: float, value: float) -> None:
        """Append a (time, value) sample to a series."""
        self.tick(time)
        self.series[series].append((time, value))

    def open_span(self, name: str, time: float) -> Span:
        """Open a new span; close it with :meth:`close_span`."""
        self.tick(time)
        span = Span(name, time, trace=self)
        self.spans[name].append(span)
        return span

    def close_span(self, span: Span, time: float) -> None:
        self.tick(time)
        span.end = time

    def close_open_spans(self, time: Optional[float] = None) -> int:
        """Close every still-open span at ``time`` (default: the clock).

        Returns the number of spans closed.  Used before serializing a
        trace mid-run so the snapshot is self-contained.
        """
        when = self.clock if time is None else time
        self.tick(when)
        closed = 0
        for spans in self.spans.values():
            for span in spans:
                if span.end is None:
                    span.end = max(when, span.start)
                    closed += 1
        return closed

    # -- reading -----------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of a counter (0 if never written)."""
        return self.counters.get(name, 0.0)

    def total(self, prefix: str) -> float:
        """Sum of all counters whose name starts with ``prefix``."""
        return sum(v for k, v in self.counters.items()
                   if k.startswith(prefix))

    def busy_time(self, span_name: str) -> float:
        """Total span time under ``span_name``.

        Open spans count up to the clock watermark, so a mid-run
        reading reflects work in progress instead of raising.
        """
        return sum(s.duration for s in self.spans.get(span_name, []))

    def utilization(self, span_name: str,
                    elapsed: Optional[float] = None) -> float:
        """Busy fraction for one span name, clamped to [0, 1].

        ``elapsed`` defaults to the clock watermark.  Overlapping
        spans (multi-slot devices) are clamped rather than summed
        past 1.
        """
        horizon = self.clock if elapsed is None else elapsed
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time(span_name) / horizon)

    def peak(self, series_name: str) -> float:
        """Maximum sampled value of a series (0 if empty)."""
        samples = self.series.get(series_name, [])
        if not samples:
            return 0.0
        return max(v for _t, v in samples)

    def merge(self, other: "Trace") -> None:
        """Fold another trace's records into this one."""
        for key, value in other.counters.items():
            self.counters[key] += value
        for key, samples in other.series.items():
            self.series[key].extend(samples)
        for key, spans in other.spans.items():
            self.spans[key].extend(spans)
        self.tick(other.clock)

    def report(self, prefix: str = "") -> dict[str, float]:
        """Counters (optionally filtered by prefix) as a plain dict."""
        return {k: v for k, v in sorted(self.counters.items())
                if k.startswith(prefix)}

    # -- derived reports ---------------------------------------------------

    def span_summary(self) -> dict[str, dict[str, float]]:
        """Per span name: count, open count, total/mean/max duration."""
        out: dict[str, dict[str, float]] = {}
        for name, spans in sorted(self.spans.items()):
            if not spans:
                continue
            durations = [s.duration for s in spans]
            total = sum(durations)
            out[name] = {
                "count": float(len(spans)),
                "open": float(sum(1 for s in spans if not s.closed)),
                "total_s": total,
                "mean_s": total / len(spans),
                "max_s": max(durations),
            }
        return out

    def critical_path(self, top: Optional[int] = None
                      ) -> list[dict[str, float]]:
        """Span names ranked by total busy time, busiest first.

        The head of this list is where the run actually spent its
        time — the simulated critical path.  ``share`` is relative to
        the clock watermark (can exceed 1 for multi-slot devices).
        """
        summary = self.span_summary()
        ranked = sorted(summary.items(),
                        key=lambda kv: (-kv[1]["total_s"], kv[0]))
        if top is not None:
            ranked = ranked[:top]
        horizon = self.clock
        return [{"span": name,
                 "busy_s": stats["total_s"],
                 "count": stats["count"],
                 "share": (stats["total_s"] / horizon
                           if horizon > 0 else 0.0)}
                for name, stats in ranked]

    def device_utilization(self, elapsed: Optional[float] = None
                           ) -> dict[str, float]:
        """Per-device busy fraction from ``device.<name>.busy_s``.

        Values are clamped to [0, 1]; devices that never executed are
        absent.  ``elapsed`` defaults to the clock watermark.
        """
        horizon = self.clock if elapsed is None else elapsed
        out: dict[str, float] = {}
        prefix, suffix = "device.", ".busy_s"
        for key, value in sorted(self.counters.items()):
            if key.startswith(prefix) and key.endswith(suffix):
                name = key[len(prefix):-len(suffix)]
                if horizon > 0:
                    out[name] = min(1.0, value / horizon)
                else:
                    out[name] = 0.0
        return out

    def link_report(self) -> dict[str, dict[str, float]]:
        """Per-link totals: ``{link: {"bytes": ..., "chunks": ...}}``."""
        out: dict[str, dict[str, float]] = {}
        prefix = "link."
        for key, value in sorted(self.counters.items()):
            if not key.startswith(prefix):
                continue
            rest = key[len(prefix):]
            name, _, metric = rest.rpartition(".")
            if metric not in ("bytes", "chunks") or not name:
                continue
            out.setdefault(name, {"bytes": 0.0, "chunks": 0.0})
            out[name][metric] += value
        return out

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Schema-versioned plain-dict form (JSON-serializable)."""
        return {
            "schema": TRACE_SCHEMA,
            "clock": self.clock,
            "counters": dict(sorted(self.counters.items())),
            "series": {name: [[t, v] for t, v in samples]
                       for name, samples in sorted(self.series.items())},
            "spans": {name: [[s.start, s.end] for s in spans]
                      for name, spans in sorted(self.spans.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        """Rebuild a trace from :meth:`to_dict` output."""
        schema = data.get("schema")
        if schema != TRACE_SCHEMA:
            raise ValueError(
                f"unsupported trace schema {schema!r} "
                f"(expected {TRACE_SCHEMA!r})")
        trace = cls()
        trace.clock = float(data.get("clock", 0.0))
        for name, value in data.get("counters", {}).items():
            trace.counters[name] = value
        for name, samples in data.get("series", {}).items():
            trace.series[name] = [(t, v) for t, v in samples]
        for name, spans in data.get("spans", {}).items():
            trace.spans[name] = [Span(name, start, end, trace=trace)
                                 for start, end in spans]
        return trace
