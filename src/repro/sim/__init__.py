"""Discrete-event simulation substrate.

The kernel (:mod:`repro.sim.kernel`) provides the event loop and
process model; :mod:`repro.sim.resources` provides queues and counted
resources; :mod:`repro.sim.trace` provides metric collection.
"""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from .chrometrace import chrome_trace, export_chrome_trace
from .events import EventKind, EventRing, TraceEvent
from .resources import Gate, Resource, Store
from .trace import Span, Trace

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "EventKind",
    "EventRing",
    "Gate",
    "Interrupt",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Span",
    "Store",
    "Timeout",
    "Trace",
    "TraceEvent",
    "chrome_trace",
    "export_chrome_trace",
]
