"""Chrome / Perfetto ``trace_events`` exporter.

Renders a :class:`~repro.sim.trace.Trace` as the JSON object format
understood by ``chrome://tracing`` and https://ui.perfetto.dev: a
``traceEvents`` array of phase-coded records with microsecond
timestamps.  Devices, stages, links and queries become *process*
tracks (``pid``); each span name or event actor becomes a *thread*
row (``tid``) inside its track.

Mapping:

* closed **spans** → complete slices (``ph: "X"`` with ``dur``);
* **events** with a duration (credit stalls, DMA windows) → complete
  slices on their actor's row;
* instantaneous **events** → instants (``ph: "i"``);
* ``chunk_emit`` / ``chunk_recv`` pairs sharing a ``flow_id`` → flow
  arrows (``ph: "s"`` / ``ph: "f"``) so a chunk's journey between
  stages is drawn as a connecting arc;
* serving lifecycle events → a *tenants* track with one lane per
  tenant: ``serve_start`` / ``serve_done`` pairs (matched by query
  context id) become per-query slices, arrivals / sheds / alerts
  become instants — so interleaved queries from many tenants render
  as parallel lanes instead of a single muddled row;
* ``M``-phase metadata names every process and thread.

Multi-query rings are safe: flow arrows are emitted only when both
ends of the pair survive in the bounded ring, and serve slices only
when both ``serve_start`` and ``serve_done`` are present for the
context — a query cut short (or half-evicted) renders as instants,
never as a dangling arrow or an unterminated slice.

Simulated seconds are scaled by 1e6 to the format's microseconds, so
one simulated second reads as one second in the viewer.
"""

from __future__ import annotations

import json
from typing import Optional

from .events import EventKind
from .trace import Trace

__all__ = ["chrome_trace", "export_chrome_trace"]

_US = 1e6  # simulated seconds -> trace_events microseconds

# Process-track ids, in display order.
_PID_QUERIES = 1
_PID_DEVICES = 2
_PID_STAGES = 3
_PID_CHANNELS = 4
_PID_LINKS = 5
_PID_OTHER = 6
_PID_TENANTS = 7

_PID_NAMES = {
    _PID_QUERIES: "queries",
    _PID_DEVICES: "devices",
    _PID_STAGES: "stages",
    _PID_CHANNELS: "channels",
    _PID_LINKS: "links",
    _PID_OTHER: "other",
    _PID_TENANTS: "tenants",
}

_EVENT_ACTOR_PIDS = {
    EventKind.CHUNK_EMIT: _PID_CHANNELS,
    EventKind.CHUNK_RECV: _PID_CHANNELS,
    EventKind.CREDIT_GRANT: _PID_CHANNELS,
    EventKind.CREDIT_STALL: _PID_CHANNELS,
    EventKind.DMA_ISSUE: _PID_LINKS,
    EventKind.DMA_COMPLETE: _PID_LINKS,
}

# Serving lifecycle events render on the tenants track, handled by
# the dedicated lane builder rather than the generic event loop.
_SERVE_KINDS = (EventKind.SERVE_ARRIVE, EventKind.SERVE_SHED,
                EventKind.SERVE_START, EventKind.SERVE_DONE,
                EventKind.ALERT)


def _span_pid(name: str) -> int:
    if name.startswith(("query.", "sched.")):
        # Batch queries open ``query.*`` spans; scheduled and served
        # queries open ``sched.query.*`` — both are query timelines.
        return _PID_QUERIES
    if name.startswith("device."):
        return _PID_DEVICES
    if name.startswith("stage."):
        return _PID_STAGES
    if name.startswith(("link.", "storage.", "nic.")):
        return _PID_LINKS
    return _PID_OTHER


def _event_pid(event) -> int:
    pid = _EVENT_ACTOR_PIDS.get(event.kind)
    if pid is not None:
        return pid
    if event.actor.startswith("device."):
        return _PID_DEVICES
    if event.actor.startswith(("stage.", "query.")):
        return _PID_STAGES if event.actor.startswith("stage.") \
            else _PID_QUERIES
    return _PID_OTHER


class _Tids:
    """Stable thread-row ids per (pid, row-name)."""

    def __init__(self):
        self._ids: dict[tuple[int, str], int] = {}
        self.names: dict[tuple[int, int], str] = {}

    def get(self, pid: int, name: str) -> int:
        key = (pid, name)
        tid = self._ids.get(key)
        if tid is None:
            tid = len([k for k in self._ids if k[0] == pid]) + 1
            self._ids[key] = tid
            self.names[(pid, tid)] = name
        return tid


def _tenant_lane_records(trace: Trace, tids: "_Tids") -> list[dict]:
    """The tenants track: one lane per tenant, one slice per query.

    ``serve_start`` / ``serve_done`` events are matched by query
    context id (``qid``); only complete pairs become slices, so a
    half-evicted or still-running query never leaves an unterminated
    slice.  Arrivals, sheds and burn-rate alerts render as instants
    on the same lanes.
    """
    records: list[dict] = []
    starts: dict[int, object] = {}
    dones: dict[int, object] = {}
    for event in trace.events:
        if event.kind == EventKind.SERVE_START and event.qid:
            starts[event.qid] = event
        elif event.kind == EventKind.SERVE_DONE and event.qid:
            dones[event.qid] = event

    def lane(event) -> tuple[int, str]:
        context = trace.contexts.get(event.qid, {})
        tenant = context.get("tenant", "")
        if not tenant and event.actor.startswith("serve."):
            tenant = event.actor[len("serve."):]
        name = f"tenant:{tenant}" if tenant else (event.actor
                                                  or "serve")
        return tids.get(_PID_TENANTS, name), name

    for qid in sorted(starts.keys() & dones.keys()):
        start, done = starts[qid], dones[qid]
        tid, _ = lane(start)
        context = trace.contexts.get(qid, {})
        records.append({
            "name": context.get("name", f"qid{qid}"), "ph": "X",
            "cat": "serve", "ts": start.ts * _US,
            "dur": max(done.ts - start.ts, 0.0) * _US,
            "pid": _PID_TENANTS, "tid": tid,
            "args": {"qid": qid,
                     "latency_s": done.dur}})
    for event in trace.events:
        if event.kind not in (EventKind.SERVE_ARRIVE,
                              EventKind.SERVE_SHED, EventKind.ALERT):
            continue
        if event.kind == EventKind.ALERT:
            tenant = event.actor[len("slo."):] \
                if event.actor.startswith("slo.") else event.actor
            tid = tids.get(_PID_TENANTS, f"tenant:{tenant}")
        else:
            tid, _ = lane(event)
        record = {"name": event.kind, "ph": "i", "s": "t",
                  "cat": "serve", "ts": event.ts * _US,
                  "pid": _PID_TENANTS, "tid": tid}
        if event.label:
            record["args"] = {"label": event.label}
        records.append(record)
    return records


def _paired_flow_ids(trace: Trace) -> set[int]:
    """Flow ids with both a ``chunk_emit`` and a ``chunk_recv``.

    A send whose receive fell out of the (bounded) event ring — or
    never happened because the run was cut short — must not emit a
    dangling flow arrow: Perfetto renders an unmatched ``ph: "s"`` as
    an arrow into nowhere and some validators reject it outright.
    """
    emitted: set[int] = set()
    received: set[int] = set()
    for event in trace.events:
        if not event.flow_id:
            continue
        if event.kind == EventKind.CHUNK_EMIT:
            emitted.add(event.flow_id)
        elif event.kind == EventKind.CHUNK_RECV:
            received.add(event.flow_id)
    return emitted & received


def chrome_trace(trace: Trace) -> dict:
    """``trace`` rendered as a Chrome ``trace_events`` JSON object."""
    tids = _Tids()
    records: list[dict] = []
    paired = _paired_flow_ids(trace)

    for name, spans in sorted(trace.spans.items()):
        pid = _span_pid(name)
        tid = tids.get(pid, name)
        for span in spans:
            end = span.end if span.end is not None else trace.clock
            records.append({
                "name": name, "ph": "X", "cat": "span",
                "ts": span.start * _US,
                "dur": max(end - span.start, 0.0) * _US,
                "pid": pid, "tid": tid,
            })

    records.extend(_tenant_lane_records(trace, tids))

    for event in trace.events:
        if event.kind in _SERVE_KINDS:
            continue  # rendered on the tenants track above
        pid = _event_pid(event)
        tid = tids.get(pid, event.actor or event.kind)
        args: dict = {}
        if event.label:
            args["label"] = event.label
        if event.nbytes:
            args["nbytes"] = event.nbytes
        if event.qid:
            args["qid"] = event.qid
        base = {"name": event.kind, "cat": "event",
                "pid": pid, "tid": tid}
        if args:
            base["args"] = args
        if event.dur > 0:
            records.append({**base, "ph": "X",
                            "ts": event.ts * _US,
                            "dur": event.dur * _US})
        else:
            records.append({**base, "ph": "i", "s": "t",
                            "ts": event.ts * _US})
        if event.flow_id in paired and event.kind in (
                EventKind.CHUNK_EMIT, EventKind.CHUNK_RECV):
            ph = "s" if event.kind == EventKind.CHUNK_EMIT else "f"
            flow = {"name": "chunk", "cat": "flow", "ph": ph,
                    "id": event.flow_id,
                    "ts": (event.ts + event.dur) * _US,
                    "pid": pid, "tid": tid}
            if ph == "f":
                flow["bp"] = "e"
            records.append(flow)

    records.sort(key=lambda r: (r["ts"], r["pid"], r["tid"]))

    # Metadata records carry ts/tid too so every traceEvents entry is
    # uniformly shaped (harmless to viewers, kind to validators).
    metadata: list[dict] = []
    used_pids = sorted({r["pid"] for r in records})
    for pid in used_pids:
        metadata.append({"name": "process_name", "ph": "M", "ts": 0,
                         "pid": pid, "tid": 0,
                         "args": {"name": _PID_NAMES[pid]}})
        metadata.append({"name": "process_sort_index", "ph": "M",
                         "ts": 0, "pid": pid, "tid": 0,
                         "args": {"sort_index": pid}})
    for (pid, tid), name in sorted(tids.names.items()):
        metadata.append({"name": "thread_name", "ph": "M", "ts": 0,
                         "pid": pid, "tid": tid,
                         "args": {"name": name}})

    return {"traceEvents": metadata + records,
            "displayTimeUnit": "ms",
            "otherData": {"event_ring": trace.events.stats()}}


def export_chrome_trace(trace: Trace, path: str,
                        indent: Optional[int] = None) -> dict:
    """Write :func:`chrome_trace` output as JSON to ``path``."""
    payload = chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=indent)
        fh.write("\n")
    return payload
