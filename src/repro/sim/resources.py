"""Shared-resource primitives for simulation processes.

Two primitives cover everything the hardware models need:

* :class:`Store` — a bounded FIFO queue of items.  Producers ``yield
  store.put(item)`` and block when the queue is full; consumers
  ``yield store.get()`` and block when it is empty.  Channels between
  data-flow stages are Stores.
* :class:`Resource` — a counted resource with FIFO admission.  Devices
  (a DMA engine, a storage computational unit, a memory controller
  port) are Resources: a process requests a slot, holds it for the
  service time, then releases it.

Both keep FIFO semantics so simulations stay deterministic.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from .kernel import Event, SimulationError, Simulator

__all__ = ["Store", "Resource", "Gate"]


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item


class _StoreGet(Event):
    __slots__ = ()


class Store:
    """A bounded FIFO queue connecting producer and consumer processes."""

    def __init__(self, sim: Simulator, capacity: float = math.inf,
                 name: str = ""):
        if capacity <= 0:
            raise SimulationError("Store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: list[Any] = []
        self._putters: list[_StorePut] = []
        self._getters: list[_StoreGet] = []
        # High-water mark, for flow-control experiments.
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Event that fires once ``item`` has been enqueued."""
        event = _StorePut(self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> Event:
        """Event that fires with the next item once one is available."""
        event = _StoreGet(self.sim)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: ``(True, item)`` or ``(False, None)``."""
        if self.items:
            item = self.items.pop(0)
            self._dispatch()
            return True, item
        return False, None

    def try_put(self, item: Any) -> bool:
        """Allocation-free put fast path; ``True`` if enqueued.

        Appends ``item`` without creating a ``_StorePut`` event and —
        deliberately — without serving waiting getters.  A caller on
        the flow fast path first schedules its own continuation (the
        slot the put-success event would have occupied), then calls
        :meth:`wake_getters`, reproducing ``_dispatch``'s
        put-before-get scheduling order bit for bit.  Fails (returns
        ``False``) when the store is full or earlier puts are queued,
        in which case the caller must fall back to :meth:`put` to
        keep FIFO fairness.
        """
        if self._putters or len(self.items) >= self.capacity:
            return False
        self.items.append(item)
        if len(self.items) > self.max_occupancy:
            self.max_occupancy = len(self.items)
        return True

    def wake_getters(self) -> None:
        """Serve waiting getters; the second half of a fast put.

        Identical scheduling order to the get-serving loop of
        ``_dispatch`` (FIFO, one success event per getter).
        """
        getters, items = self._getters, self.items
        while getters and items:
            getters.pop(0).succeed(items.pop(0))

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Admit pending puts while there is room.
            while self._putters and len(self.items) < self.capacity:
                put = self._putters.pop(0)
                self.items.append(put.item)
                self.max_occupancy = max(self.max_occupancy, len(self.items))
                put.succeed()
                progressed = True
            # Serve pending gets while there are items.
            while self._getters and self.items:
                get = self._getters.pop(0)
                get.succeed(self.items.pop(0))
                progressed = True


class _Request(Event):
    __slots__ = ("amount",)

    def __init__(self, resource: "Resource", amount: int):
        super().__init__(resource.sim)
        self.amount = amount


class Resource:
    """A counted resource (e.g. device execution slots) with FIFO grants.

    ``capacity`` is the number of concurrently grantable units.  A
    request may ask for several units at once (e.g. a wide DMA
    transfer); grants are strictly FIFO, so a large request at the
    head of the line blocks smaller ones behind it — matching how
    hardware arbitration queues behave.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: list[_Request] = []
        # Accounting for utilization reports.
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def try_acquire(self, amount: int = 1) -> bool:
        """Allocation-free grant fast path; ``True`` if granted now.

        Grants ``amount`` units immediately — without creating a
        ``_Request`` event or consuming a queue slot — when no earlier
        request is waiting and capacity is free.  The caller simply
        continues instead of yielding, so an uncontended acquire costs
        zero events.  Returns ``False`` under contention (or when the
        queue is non-empty, preserving FIFO fairness), in which case
        the caller must fall back to ``yield request()``.
        """
        if self._waiting or amount > self.capacity - self.in_use:
            return False
        if self.in_use == 0:
            self._busy_since = self.sim.now
        self.in_use += amount
        return True

    def request(self, amount: int = 1) -> Event:
        """Event that fires when ``amount`` units have been granted."""
        if amount < 1 or amount > self.capacity:
            raise SimulationError(
                f"cannot request {amount} of capacity {self.capacity}")
        event = _Request(self, amount)
        self._waiting.append(event)
        self._grant()
        return event

    def release(self, amount: int = 1) -> None:
        """Return ``amount`` previously granted units."""
        if amount > self.in_use:
            raise SimulationError("releasing more than in use")
        self.in_use -= amount
        if self.in_use == 0 and self._busy_since is not None:
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        self._grant()

    def _grant(self) -> None:
        while self._waiting and self._waiting[0].amount <= self.available:
            req = self._waiting.pop(0)
            if self.in_use == 0:
                self._busy_since = self.sim.now
            self.in_use += req.amount
            req.succeed()

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of time the resource was busy (any unit in use)."""
        total = self.busy_time
        if self._busy_since is not None:
            total += self.sim.now - self._busy_since
        horizon = elapsed if elapsed is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        return total / horizon


class Gate:
    """A re-arming broadcast signal.

    ``wait()`` returns an event that fires at the next ``fire()``.
    Used for completion barriers and for waking rate-limited senders.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._waiters: list[Event] = []

    def wait(self) -> Event:
        event = Event(self.sim)
        self._waiters.append(event)
        return event

    def fire(self, value: Any = None) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)
