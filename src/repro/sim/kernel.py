"""Discrete-event simulation kernel.

A small, deterministic event-driven simulator in the style of SimPy.
Model code is written as Python generators ("processes") that ``yield``
events — timeouts, queue operations, other processes — and are resumed
when those events fire.  The kernel guarantees a total, reproducible
order of execution: events fire in nondecreasing simulated time, and
events scheduled for the same instant fire in schedule order.

Everything in :mod:`repro` ultimately runs on this kernel: simulated
CPU cores, NIC processors, DMA engines, and flow-control loops are all
processes, so their interleaving is explicit and replayable.

Fast path
---------
Most events in a run are *zero-delay*: ``succeed()``, process resume,
interrupt, and Store/Resource grants all schedule at the current
instant.  Pushing those through the time-ordered heap costs two
``O(log n)`` operations for an entry whose timestamp is already known
to be ``now``.  The kernel therefore keeps a FIFO deque of
``(seq, event)`` pairs for zero-delay events and only uses the heap
for real timeouts.  The dispatch rule compares the global sequence
number of the deque head against the heap head whenever both are due
at the same instant, so the total event order is *bit-identical* to
the heap-only ordering — the fast path changes wall-clock time, never
simulated time.  Set ``REPRO_SLOW_KERNEL=1`` to force every event
through the heap (the reference path the determinism guard tests
compare against).
"""

from __future__ import annotations

import heapq
import os
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
    "Simulator",
]


class _Callback:
    """A raw scheduled callback: one ``(time, seq)`` slot, no Event.

    The dispatch loop recognizes these by ``callbacks is None`` — a
    real :class:`Event` always carries a list (possibly empty) until
    the moment it is dispatched, and every event is scheduled exactly
    once, so the marker is unambiguous.  ``_Callback`` (and any object
    following the same protocol: class-level ``callbacks = None`` plus
    an ``fn`` attribute) therefore occupies exactly the queue slot an
    Event would, keeping the total ``(time, seq)`` order bit-identical
    while skipping Event/Process/generator allocation for one-shot
    work.  Used by the flow-control fast path; see
    :meth:`Simulator.call_later`.
    """

    __slots__ = ("fn",)

    callbacks = None    # dispatch marker (never an instance attribute)
    _ok = True          # cannot fail: there is no waiter to notify
    _defused = True

    def __init__(self, fn: Callable[[], None]):
        self.fn = fn


class SimulationError(Exception):
    """Raised for misuse of the kernel (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; it is *triggered* once it has been
    scheduled to fire, and *processed* once its callbacks have run.
    Waiting on an already-processed event resumes the waiter
    immediately (at the current simulated time).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's payload (or exception, if it failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(0.0, self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see the exception."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._schedule(0.0, self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.callbacks is None:
            # Already processed: run at the next scheduling opportunity so
            # callback ordering stays deterministic.
            proxy = Event(self.sim)
            proxy.callbacks.append(lambda _evt: callback(self))
            proxy._ok = True
            proxy._defused = True
            self.sim._schedule(0.0, proxy)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        # Flattened Event.__init__ (no super() call): a Timeout is
        # allocated per flow hop, so the extra frame is measurable.
        self.sim = sim
        self.callbacks = []
        self._defused = False
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(delay, self)


class Process(Event):
    """A running model process wrapping a generator.

    The process itself is an event that fires (with the generator's
    return value) when the generator finishes, so processes can wait
    for each other by yielding the :class:`Process` object.
    """

    __slots__ = ("name", "_generator", "_target", "_scope")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._target: Optional[Event] = None
        # Optional (context_holder, qid) pair: while the generator
        # runs, ``context_holder.current_qid`` is set to ``qid`` and
        # reset on suspension — dynamic-extent query attribution
        # without a delegating wrapper generator per process.  Pure
        # observation: setting an attribute cannot alter the event
        # schedule.
        self._scope: Optional[tuple] = None
        # Kick off at the current time.
        init = Event(sim)
        init._ok = True
        init.add_callback(self._resume)
        sim._schedule(0.0, init)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        evt = Event(self.sim)
        evt._ok = False
        evt._value = Interrupt(cause)
        evt._defused = True
        evt.add_callback(self._resume)
        self.sim._schedule(0.0, evt)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        self._target = None
        self.sim._active_process = self
        scope = self._scope
        if scope is not None:
            scope[0].current_qid = scope[1]
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            if scope is not None:
                scope[0].current_qid = 0
            self._ok = True
            self._value = stop.value
            self.sim._schedule(0.0, self)
            return
        except BaseException as exc:
            self.sim._active_process = None
            if scope is not None:
                scope[0].current_qid = 0
            self._ok = False
            self._value = exc
            self.sim._schedule(0.0, self)
            return
        self.sim._active_process = None
        if scope is not None:
            scope[0].current_qid = 0
        if not isinstance(next_event, Event):
            raise SimulationError(
                f"process {self.name!r} yielded non-event {next_event!r}")
        self._target = next_event
        # Inlined add_callback: the yielded event is almost never
        # already processed, and this runs once per process resume.
        callbacks = next_event.callbacks
        if callbacks is None:
            next_event.add_callback(self._resume)
        else:
            callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._pending = 0
        for evt in self._events:
            if not isinstance(evt, Event):
                raise SimulationError(f"expected Event, got {evt!r}")
        if not self._events:
            self.succeed({})
            return
        for evt in self._events:
            self._pending += 1
            evt.add_callback(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict[int, Any]:
        return {i: evt._value for i, evt in enumerate(self._events)
                if evt.processed}


class AllOf(_Condition):
    """Fires when every constituent event has fired.

    The value is a dict mapping the index of each event (in input
    order) to its value.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self.succeed(self._results())


class Simulator:
    """The event loop: a clock plus a priority queue of pending events.

    Zero-delay events take a fast path: they are appended to a FIFO
    deque instead of the heap (see the module docstring).  Dispatch
    interleaves deque and heap by global sequence number, so the event
    order is identical to a heap-only kernel.
    """

    def __init__(self):
        self.now: float = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._immediate: deque[tuple[int, Event]] = deque()
        self._seq = 0
        self._active_process: Optional[Process] = None
        self.fast_path = not os.environ.get("REPRO_SLOW_KERNEL")
        #: Interrupt flag for :meth:`run_until_wake` (see :meth:`wake`).
        self.woken = False

    # -- scheduling ----------------------------------------------------

    def _schedule(self, delay: float, event: Event) -> None:
        self._seq += 1
        if delay == 0.0 and self.fast_path:
            # Entries in the immediate deque are always due at the
            # current instant: time only advances when the deque is
            # empty, so ``now`` at dispatch equals ``now`` at schedule.
            self._immediate.append((self._seq, event))
        else:
            heapq.heappush(self._queue, (self.now + delay, self._seq, event))

    def call_later(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule ``fn()`` to run after ``delay``, as a raw callback.

        The callback occupies the same ``(time, seq)`` slot an
        :class:`Event` scheduled at this point would, so interleaving
        with every other pending event is *bit-identical* to the
        event-based formulation — the invariant the flow-control fast
        path is built on.  Unlike an event, nothing can wait on the
        callback, it cannot fail, and it allocates a single two-slot
        holder instead of an Event (or a Process plus a generator
        frame for one-shot flows).

        Invariants callers must respect:

        * ``fn`` runs inside the dispatch loop at its due instant;
          it may schedule further events/callbacks but must not block.
        * Exceptions propagate out of :meth:`run`/:meth:`step` like a
          failed, undefused event would.
        * A callback counts toward :attr:`pending_events` until it
          runs, exactly like the event it replaces.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._schedule(delay, _Callback(fn))

    # -- factory helpers -----------------------------------------------

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event (trigger with ``succeed``/``fail``)."""
        return Event(self)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Composite event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Composite event that fires when any of ``events`` fires."""
        return AnyOf(self, events)

    # -- running -------------------------------------------------------

    def _pop(self) -> Event:
        """The next due event across the deque and the heap.

        Deque entries are due at ``now``; a heap entry wins only when
        it is *also* due at ``now`` and carries an earlier sequence
        number (it was scheduled before the deque head).
        """
        immediate = self._immediate
        if immediate:
            queue = self._queue
            if queue and queue[0][0] <= self.now \
                    and queue[0][1] < immediate[0][0]:
                return heapq.heappop(queue)[2]
            return immediate.popleft()[1]
        when, _seq, event = heapq.heappop(self._queue)
        if when < self.now:
            raise SimulationError("event scheduled in the past")
        self.now = when
        return event

    def step(self) -> None:
        """Process the single next event."""
        event = self._pop()
        callbacks = event.callbacks
        if callbacks is None:
            # A raw scheduled callback (see call_later): same slot,
            # no Event machinery.
            event.fn()
            return
        event.callbacks = None
        if len(callbacks) == 1:
            callbacks[0](event)
        else:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock reaches ``until``."""
        if until is not None and until < self.now:
            raise SimulationError(
                f"until={until!r} is in the past (now={self.now!r})")
        # The hot loop: step() inlined with local bindings.  Immediate
        # events are always due now (<= until), so the horizon check
        # only consults the heap when the deque is empty.
        pop, immediate, queue = self._pop, self._immediate, self._queue
        while queue or immediate:
            if until is not None and not immediate \
                    and queue[0][0] > until:
                self.now = until
                return
            event = pop()
            callbacks = event.callbacks
            if callbacks is None:
                # Raw scheduled callback (call_later): same (time,
                # seq) slot as an event, none of the machinery.
                event.fn()
                continue
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise event._value
        if until is not None:
            self.now = until

    def wake(self) -> None:
        """Interrupt a :meth:`run_until_wake` in progress.

        Called from an event callback (e.g. a query-completion hook)
        while the kernel is dispatching; the current event finishes
        normally and the interruptible run returns before dispatching
        the next one.  Setting a flag cannot alter the event schedule,
        so an interrupted run dispatches the same events in the same
        order as an uninterrupted one — it merely returns control to
        the caller between two of them.
        """
        self.woken = True

    def run_until_wake(self, until: Optional[float] = None) -> None:
        """Run until :meth:`wake` fires, ``until`` is reached, or idle.

        The interruptible counterpart of :meth:`run`, for external
        drivers (the serving front-end) that must regain control the
        moment a completion callback fires — without paying a Python
        ``peek``/``step`` round-trip per event.  Dispatch order is
        bit-identical to :meth:`run`; only where control returns
        differs:

        * :meth:`wake` called during dispatch → return immediately
          after the current event, clock untouched;
        * next event due past ``until`` (or queue drained with
          ``until`` set) → advance the clock to ``until`` and return,
          exactly like :meth:`run`;
        * queue drained with no ``until`` → return.
        """
        if until is not None and until < self.now:
            raise SimulationError(
                f"until={until!r} is in the past (now={self.now!r})")
        self.woken = False
        pop, immediate, queue = self._pop, self._immediate, self._queue
        while not self.woken:
            if not immediate:
                if not queue or (until is not None
                                 and queue[0][0] > until):
                    if until is not None:
                        self.now = until
                    return
            event = pop()
            callbacks = event.callbacks
            if callbacks is None:
                event.fn()
                continue
            event.callbacks = None
            if len(callbacks) == 1:
                callbacks[0](event)
            else:
                for callback in callbacks:
                    callback(event)
            if not event._ok and not event._defused:
                raise event._value

    def run_process(self, generator: Generator,
                    until: Optional[float] = None) -> Any:
        """Convenience: start ``generator`` as a process, run, return value.

        Raises the process's exception if it failed.
        """
        proc = self.process(generator)
        self.run(until=until)
        if not proc.triggered:
            raise SimulationError(
                f"process {proc.name!r} did not finish by t={self.now}")
        if not proc._ok:
            raise proc._value
        return proc._value

    @property
    def pending_events(self) -> int:
        """Number of events still queued (for tests/diagnostics)."""
        return len(self._queue) + len(self._immediate)

    def peek_next_time(self) -> Optional[float]:
        """Due time of the next pending event, or ``None`` if idle.

        Immediate (zero-delay) events are due at the current instant.
        External drivers (the serving front-end) use this to advance
        the clock event-by-event without overshooting a wake-up.
        """
        if self._immediate:
            return self.now
        if self._queue:
            return self._queue[0][0]
        return None
