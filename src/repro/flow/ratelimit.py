"""Token-bucket rate limiting for DMA-driven flows (§7.3).

The scheduler's second lever: "if DMA engines push the data through a
large portion of query plans, the scheduler should be able to rate
limit the bandwidth used... dynamically."  A :class:`RateLimiter`
meters bytes; stages and channels ``acquire`` before moving data, and
the scheduler adjusts ``rate`` at runtime.
"""

from __future__ import annotations

import math
from typing import Generator, Optional

from ..sim import Simulator, Trace

__all__ = ["RateLimiter"]


class RateLimiter:
    """A deterministic token bucket metering bytes per second.

    When given a ``trace``, the limiter reports how often and how long
    it actually throttled (``ratelimit.<name>.waits`` /
    ``.throttled_s`` / ``.bytes``) — the evidence the scheduler needs
    to see whether its rate decisions bind.
    """

    def __init__(self, sim: Simulator, rate: float,
                 burst: Optional[float] = None,
                 trace: Optional[Trace] = None,
                 name: str = "default"):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate
        self.burst = burst if burst is not None else rate * 0.01
        self.trace = trace
        self.name = name
        self._tokens = self.burst
        self._last = sim.now

    def _record(self, nbytes: float, wait: float) -> None:
        if self.trace is None:
            return
        self.trace.add(f"ratelimit.{self.name}.bytes", nbytes)
        if wait > 0:
            self.trace.add(f"ratelimit.{self.name}.waits", 1)
            self.trace.add(f"ratelimit.{self.name}.throttled_s", wait)

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    def set_rate(self, rate: float) -> None:
        """Adjust the sustained rate (takes effect immediately)."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        self._refill()
        self.rate = rate
        self.burst = max(self.burst, rate * 0.01)

    def acquire(self, nbytes: float) -> Generator:
        """Wait until ``nbytes`` of budget is available, then spend it.

        Requests larger than the burst are admitted by paying the
        full serialization delay (they cannot fit in the bucket).
        """
        self._refill()
        if self._tokens >= nbytes:
            self._tokens -= nbytes
            self._record(nbytes, 0.0)
            yield self.sim.timeout(0.0)
            return
        deficit = nbytes - self._tokens
        self._tokens = 0.0
        wait = deficit / self.rate
        if not math.isfinite(wait):
            raise ValueError(f"non-finite wait for {nbytes} bytes")
        self._record(nbytes, wait)
        yield self.sim.timeout(wait)
        self._last = self.sim.now
