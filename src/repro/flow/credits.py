"""Credit-based flow control between pipeline stages (§7.1).

The paper's data-movement design: queues placed strategically along
the pipeline, connected by DMA engines, with *credit-based* flow
control — the receiver grants the sender a budget of queue slots, and
a low-traffic counter-stream of credit messages replenishes it.  This
is the mechanism PCIe itself uses.

A :class:`CreditChannel` connects a producing stage to a consuming
stage's inbox across a path of fabric links.  Sends block until a
credit is available, so the consumer-side queue occupancy can never
exceed the credit window — the invariant bench C3 sweeps.  Credit
returns travel the reverse path as tiny control messages: they pay
latency and are counted (``flow.<name>.control_bytes``) but do not
occupy link bandwidth, matching their negligible size.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from ..hardware.device import Device, OpKind
from ..hardware.interconnect import Link
from ..sim import EventKind, Simulator, Store, Trace
from .ratelimit import RateLimiter

__all__ = ["END", "CreditChannel"]


class _EndOfStream:
    """Sentinel closing one producer's contribution to a channel."""

    def __repr__(self):
        return "END"


END = _EndOfStream()


class CreditChannel:
    """A flow-controlled, link-crossing connection into a stage inbox."""

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 links: list[Link], inbox: Store, credits: int = 8,
                 control_bytes: int = 16,
                 rate_limiter: Optional[RateLimiter] = None,
                 cpu_mediator: Optional[Device] = None,
                 actor: str = "", direction: str = "",
                 qid: int = 0):
        if credits < 1:
            raise ValueError("credit window must be >= 1")
        self.sim = sim
        self.trace = trace
        self.name = name
        self.links = list(links)
        self.inbox = inbox
        self.credits = credits
        self.control_bytes = control_bytes
        self.rate_limiter = rate_limiter
        self.cpu_mediator = cpu_mediator
        # Movement-ledger attribution: the operator (sending stage)
        # responsible for this channel's bytes, and the direction the
        # bytes travel (``src_location->dst_location``).
        self.actor = actor or name
        self.direction = direction
        # Owning query context (serving runs).  The wire-delivery and
        # credit-return helpers run as *detached* processes outside
        # the sender stage's scoped frame, so they tag their events
        # explicitly instead of relying on the ambient context.
        self.qid = qid
        self._tokens = Store(sim, capacity=credits,
                             name=f"{name}.credits")
        for _ in range(credits):
            self._tokens.items.append(True)
        self.in_flight_or_queued = 0
        self.max_outstanding = 0
        self._reverse_latency = sum(link.latency
                                    for link in self.links)

    # -- sending ---------------------------------------------------------

    def send(self, payload: Any, nbytes: float) -> Generator:
        """Ship ``payload`` (``nbytes`` on the wire) to the inbox.

        Blocks on the credit window, the optional rate limiter, and
        link *serialization* (port occupancy for nbytes/bandwidth at
        each hop).  Propagation latency is paid asynchronously — the
        message is "on the wire" and the sender may pipeline the next
        one, which is why a window larger than the bandwidth-delay
        product is needed to keep a long pipe full (bench C3).
        """
        credit_wait_from = self.sim.now
        yield self._tokens.get()
        if self.sim.now > credit_wait_from:
            # The sender blocked on the credit window: the receiver's
            # queue was full.  This is the "credit-starved" bucket of
            # the backpressure attribution report.
            stall = self.sim.now - credit_wait_from
            self.trace.add(f"flow.{self.name}.stall.credit_s", stall)
            self.trace.emit(credit_wait_from, EventKind.CREDIT_STALL,
                            self.name, nbytes=nbytes, dur=stall)
        self.in_flight_or_queued += 1
        self.max_outstanding = max(self.max_outstanding,
                                   self.in_flight_or_queued)
        wire_from = self.sim.now
        serialization = sum(nbytes / link.bandwidth
                            for link in self.links)
        if self.rate_limiter is not None and nbytes > 0:
            yield from self.rate_limiter.acquire(nbytes)
        propagation = 0.0
        for link in self.links:
            yield link._ports.request()
            # Mirror Link.transfer: a busy span per port-occupancy
            # window, consumed by the critical-path walker.
            span = self.trace.open_span(f"link.{link.name}",
                                        self.sim.now)
            try:
                yield self.sim.timeout(nbytes / link.bandwidth)
            finally:
                self.trace.close_span(span, self.sim.now)
                link._ports.release()
            propagation += link.latency
            self.trace.tick(self.sim.now)
            self.trace.add(f"link.{link.name}.bytes", nbytes)
            self.trace.add(f"link.{link.name}.chunks", 1)
            self.trace.add(f"movement.{link.segment}.bytes", nbytes)
            self.trace.add(f"flow.{self.name}.bytes", nbytes)
            self.trace.record_movement(link.name, self.actor,
                                       self.direction, nbytes)
            if self.cpu_mediator is not None and nbytes > 0:
                # CPU-mediated copy at every hop (ablation A2): the
                # host core touches the data instead of a DMA engine.
                yield from self.cpu_mediator.execute(OpKind.GENERIC, nbytes)
        wire_overhead = (self.sim.now - wire_from) - serialization
        if wire_overhead > 1e-12:
            # Time beyond uncontended serialization: queuing behind
            # other traffic on the route (rate limiter, port
            # contention, CPU mediation) — the "downstream-full"
            # bucket.
            self.trace.add(f"flow.{self.name}.stall.link_s",
                           wire_overhead)
        flow_id = self.trace.next_flow_id()
        self.trace.emit(self.sim.now, EventKind.CHUNK_EMIT, self.name,
                        label="end" if payload is END else "",
                        nbytes=nbytes, flow_id=flow_id)
        self.sim.process(self._deliver(payload, propagation, flow_id),
                         name=f"{self.name}.wire")
        self.trace.add(f"flow.{self.name}.messages", 1)

    def _deliver(self, payload: Any, propagation: float,
                 flow_id: int = 0) -> Generator:
        yield self.sim.timeout(propagation)
        yield self.inbox.put((self, payload))
        self.trace.emit(self.sim.now, EventKind.CHUNK_RECV, self.name,
                        label="end" if payload is END else "",
                        flow_id=flow_id, qid=self.qid)

    def send_end(self) -> Generator:
        """Close this producer's stream (consumes a credit like data)."""
        yield from self.send(END, 0.0)

    # -- receiving ---------------------------------------------------------

    def ack(self) -> None:
        """Consumer finished one message: return a credit.

        The credit message travels the reverse path (latency only) and
        is counted as control traffic — the counter-stream of §7.1.
        """
        self.sim.process(self._return_credit(), name=f"{self.name}.credit")

    def _return_credit(self) -> Generator:
        if self._reverse_latency > 0:
            yield self.sim.timeout(self._reverse_latency)
        else:
            yield self.sim.timeout(0.0)
        self.in_flight_or_queued -= 1
        yield self._tokens.put(True)
        self.trace.emit(self.sim.now, EventKind.CREDIT_GRANT, self.name,
                        nbytes=self.control_bytes, qid=self.qid)
        self.trace.add(f"flow.{self.name}.control_bytes",
                       self.control_bytes)
        self.trace.add("flow.control.total_bytes", self.control_bytes)
