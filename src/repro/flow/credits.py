"""Credit-based flow control between pipeline stages (§7.1).

The paper's data-movement design: queues placed strategically along
the pipeline, connected by DMA engines, with *credit-based* flow
control — the receiver grants the sender a budget of queue slots, and
a low-traffic counter-stream of credit messages replenishes it.  This
is the mechanism PCIe itself uses.

A :class:`CreditChannel` connects a producing stage to a consuming
stage's inbox across a path of fabric links.  Sends block until a
credit is available, so the consumer-side queue occupancy can never
exceed the credit window — the invariant bench C3 sweeps.  Credit
returns travel the reverse path as tiny control messages: they pay
latency and are counted (``flow.<name>.control_bytes``) but do not
occupy link bandwidth, matching their negligible size.

Hot path
--------
Wire delivery and credit return are one-shot, straight-line flows, so
by default they run as *scheduled callback chains*
(:meth:`~repro.sim.Simulator.call_later`-style slots) instead of
detached generator processes: each step occupies exactly the
``(time, seq)`` slot its event-based equivalent would, so the total
event order — and therefore every trace, ledger, and checksum — is
bit-identical, while each message skips several Event/Process/
generator-frame allocations.  The only slot deliberately removed in
*both* paths is the former unconditional ``timeout(0.0)`` a
zero-latency credit return used to yield — pure event churn.  Set
``REPRO_SLOW_FLOW=1`` (read at channel construction) to force the
generator-based reference flows the determinism gates compare
against.
"""

from __future__ import annotations

import os
from typing import Any, Generator, Optional

from ..hardware.device import Device, OpKind
from ..hardware.interconnect import Link
from ..sim import EventKind, Simulator, Store, Trace
from .ratelimit import RateLimiter

__all__ = ["END", "CreditChannel", "flow_fast_path"]


def flow_fast_path() -> bool:
    """Whether new channels/stages use the callback fast path."""
    return not os.environ.get("REPRO_SLOW_FLOW")


class _EndOfStream:
    """Sentinel closing one producer's contribution to a channel."""

    def __repr__(self):
        return "END"


END = _EndOfStream()


class _Delivery:
    """One in-flight message's wire delivery, as a callback chain.

    Replaces the detached ``_deliver`` generator process with a single
    rescheduled holder.  The kernel dispatches it via the raw-callback
    protocol (class-level ``callbacks = None`` + ``fn``), and each
    state transition claims exactly the queue slot the generator
    formulation would have:

    =====  ==================  ===================================
    state  slot it occupies    work performed at dispatch
    =====  ==================  ===================================
    0      process init        schedule the propagation timeout
    1      propagation timer   put into the inbox, wake the getter
    2      put-success         emit ``chunk_recv``
    =====  ==================  ===================================

    The generator's final slot (the process-done event, which nothing
    waits on) is dropped — removing a no-op slot shifts later global
    sequence numbers but never their *relative* order, which is all
    dispatch compares.
    """

    __slots__ = ("channel", "payload", "propagation", "flow_id",
                 "state")

    callbacks = None        # raw-callback dispatch marker
    _ok = True
    _defused = True

    def __init__(self, channel: "CreditChannel", payload: Any,
                 propagation: float, flow_id: int):
        self.channel = channel
        self.payload = payload
        self.propagation = propagation
        self.flow_id = flow_id
        self.state = 0
        channel.sim._schedule(0.0, self)        # the init slot

    def fn(self) -> None:
        channel = self.channel
        state = self.state
        if state == 0:
            self.state = 1
            channel.sim._schedule(self.propagation, self)
        elif state == 1:
            inbox = channel.inbox
            if inbox.try_put((channel, self.payload)):
                self.state = 2
                channel.sim._schedule(0.0, self)   # put-success slot
                inbox.wake_getters()
            else:
                # Bounded inbox, currently full: fall back to a real
                # put event; the recv emit rides its success slot.
                inbox.put((channel, self.payload)).add_callback(
                    self._on_put)
        else:
            self._emit_recv()

    def _on_put(self, _event) -> None:
        self._emit_recv()

    def _emit_recv(self) -> None:
        channel = self.channel
        channel.trace.emit(
            channel.sim.now, EventKind.CHUNK_RECV, channel.name,
            label="end" if self.payload is END else "",
            flow_id=self.flow_id, qid=channel.qid)


class _CreditReturn:
    """One credit's journey back to the sender, as a callback chain.

    Same protocol and slot discipline as :class:`_Delivery`.  For a
    zero-latency reverse path the chain starts directly in state 1 —
    the put happens at the init slot's dispatch, exactly where the
    reference generator (which no longer yields a pointless
    ``timeout(0.0)``) performs it.
    """

    __slots__ = ("channel", "state")

    callbacks = None
    _ok = True
    _defused = True

    def __init__(self, channel: "CreditChannel"):
        self.channel = channel
        self.state = 0 if channel._reverse_latency > 0 else 1
        channel.sim._schedule(0.0, self)        # the init slot

    def fn(self) -> None:
        channel = self.channel
        state = self.state
        if state == 0:
            self.state = 1
            channel.sim._schedule(channel._reverse_latency, self)
        elif state == 1:
            channel.in_flight_or_queued -= 1
            tokens = channel._tokens
            if tokens.try_put(True):
                self.state = 2
                channel.sim._schedule(0.0, self)   # put-success slot
                tokens.wake_getters()
            else:  # pragma: no cover - credits are conserved
                tokens.put(True).add_callback(self._on_put)
        else:
            self._emit_grant()

    def _on_put(self, _event) -> None:  # pragma: no cover - see above
        self._emit_grant()

    def _emit_grant(self) -> None:
        channel = self.channel
        channel.trace.emit(channel.sim.now, EventKind.CREDIT_GRANT,
                           channel.name, nbytes=channel.control_bytes,
                           qid=channel.qid)
        channel._control_bytes.add(channel.control_bytes)
        channel._control_total.add(channel.control_bytes)


class CreditChannel:
    """A flow-controlled, link-crossing connection into a stage inbox."""

    def __init__(self, sim: Simulator, trace: Trace, name: str,
                 links: list[Link], inbox: Store, credits: int = 8,
                 control_bytes: int = 16,
                 rate_limiter: Optional[RateLimiter] = None,
                 cpu_mediator: Optional[Device] = None,
                 actor: str = "", direction: str = "",
                 qid: int = 0):
        if credits < 1:
            raise ValueError("credit window must be >= 1")
        self.sim = sim
        self.trace = trace
        self.name = name
        self.links = list(links)
        self.inbox = inbox
        self.credits = credits
        self.control_bytes = control_bytes
        self.rate_limiter = rate_limiter
        self.cpu_mediator = cpu_mediator
        # Movement-ledger attribution: the operator (sending stage)
        # responsible for this channel's bytes, and the direction the
        # bytes travel (``src_location->dst_location``).
        self.actor = actor or name
        self.direction = direction
        # Owning query context (serving runs).  The wire-delivery and
        # credit-return helpers run as *detached* chains outside the
        # sender stage's scoped frame, so they tag their events
        # explicitly instead of relying on the ambient context.
        self.qid = qid
        self._tokens = Store(sim, capacity=credits,
                             name=f"{name}.credits")
        for _ in range(credits):
            self._tokens.items.append(True)
        self.in_flight_or_queued = 0
        self.max_outstanding = 0
        self._reverse_latency = sum(link.latency
                                    for link in self.links)
        # Callback fast path unless the reference flag forces the
        # generator flows (read here so tests can toggle per channel).
        self._fast = flow_fast_path()
        # Counter handles and per-hop terms, resolved once instead of
        # per message (the f-string keys used to dominate trace.add).
        self._stall_credit = trace.counter_handle(
            f"flow.{name}.stall.credit_s")
        self._stall_link = trace.counter_handle(
            f"flow.{name}.stall.link_s")
        self._flow_bytes = trace.counter_handle(f"flow.{name}.bytes")
        self._messages = trace.counter_handle(f"flow.{name}.messages")
        self._control_bytes = trace.counter_handle(
            f"flow.{name}.control_bytes")
        self._control_total = trace.counter_handle(
            "flow.control.total_bytes")
        self._hops = [
            (link,
             f"link.{link.name}",
             trace.counter_handle(f"link.{link.name}.bytes"),
             trace.counter_handle(f"link.{link.name}.chunks"),
             trace.counter_handle(f"movement.{link.segment}.bytes"),
             # Pre-built movement-ledger key — record_movement's
             # per-call tuple construction, hoisted.
             (link.name, self.actor, self.direction))
            for link in self.links]

    # -- sending ---------------------------------------------------------

    def send(self, payload: Any, nbytes: float) -> Generator:
        """Ship ``payload`` (``nbytes`` on the wire) to the inbox.

        Blocks on the credit window, the optional rate limiter, and
        link *serialization* (port occupancy for nbytes/bandwidth at
        each hop).  Propagation latency is paid asynchronously — the
        message is "on the wire" and the sender may pipeline the next
        one, which is why a window larger than the bandwidth-delay
        product is needed to keep a long pipe full (bench C3).
        """
        sim, trace = self.sim, self.trace
        credit_wait_from = sim.now
        tokens = self._tokens
        if self._fast and tokens.items and not tokens._putters:
            # Allocation-free credit take: the zero-delay timeout
            # claims exactly the slot the StoreGet success event
            # would have, so the resume order is bit-identical.  (A
            # queued putter — unreachable while credits are conserved
            # — would have to be re-admitted getter-first, so that
            # case falls back to the event path.)
            del tokens.items[0]
            yield sim.timeout(0.0)
        else:
            yield tokens.get()
        if sim.now > credit_wait_from:
            # The sender blocked on the credit window: the receiver's
            # queue was full.  This is the "credit-starved" bucket of
            # the backpressure attribution report.
            stall = sim.now - credit_wait_from
            self._stall_credit.add(stall)
            trace.emit(credit_wait_from, EventKind.CREDIT_STALL,
                       self.name, nbytes=nbytes, dur=stall)
        self.in_flight_or_queued += 1
        if self.in_flight_or_queued > self.max_outstanding:
            self.max_outstanding = self.in_flight_or_queued
        wire_from = sim.now
        links = self.links
        if len(links) == 1:
            serialization = nbytes / links[0].bandwidth
        else:
            serialization = sum(nbytes / link.bandwidth
                                for link in links)
        if self.rate_limiter is not None and nbytes > 0:
            yield from self.rate_limiter.acquire(nbytes)
        propagation = 0.0
        ledger = trace.ledger
        for link, span_name, h_bytes, h_chunks, h_movement, hop_key \
                in self._hops:
            if not link._ports.try_acquire():
                yield link._ports.request()
            # Mirror Link.transfer: a busy span per port-occupancy
            # window, consumed by the critical-path walker.
            span = trace.open_span(span_name, sim.now)
            try:
                yield sim.timeout(nbytes / link.bandwidth)
            finally:
                trace.close_span(span, sim.now)
                link._ports.release()
            propagation += link.latency
            now = sim.now
            if now > trace.clock:       # tick(), inlined
                trace.clock = now
            h_bytes.add(nbytes)
            h_chunks.add(1)
            h_movement.add(nbytes)
            self._flow_bytes.add(nbytes)
            # record_movement, inlined with the pre-built key.
            cell = ledger.get(hop_key)
            if cell is None:
                cell = ledger[hop_key] = [0.0, 0.0]
            cell[0] += nbytes
            cell[1] += 1.0
            if self.cpu_mediator is not None and nbytes > 0:
                # CPU-mediated copy at every hop (ablation A2): the
                # host core touches the data instead of a DMA engine.
                yield from self.cpu_mediator.execute(OpKind.GENERIC, nbytes)
        wire_overhead = (sim.now - wire_from) - serialization
        if wire_overhead > 1e-12:
            # Time beyond uncontended serialization: queuing behind
            # other traffic on the route (rate limiter, port
            # contention, CPU mediation) — the "downstream-full"
            # bucket.
            self._stall_link.add(wire_overhead)
        flow_id = trace.next_flow_id()
        trace.emit(sim.now, EventKind.CHUNK_EMIT, self.name,
                   label="end" if payload is END else "",
                   nbytes=nbytes, flow_id=flow_id)
        if self._fast:
            _Delivery(self, payload, propagation, flow_id)
        else:
            sim.process(self._deliver(payload, propagation, flow_id),
                        name=f"{self.name}.wire")
        self._messages.add(1)

    def _deliver(self, payload: Any, propagation: float,
                 flow_id: int = 0) -> Generator:
        """Reference (``REPRO_SLOW_FLOW=1``) generator delivery."""
        yield self.sim.timeout(propagation)
        yield self.inbox.put((self, payload))
        self.trace.emit(self.sim.now, EventKind.CHUNK_RECV, self.name,
                        label="end" if payload is END else "",
                        flow_id=flow_id, qid=self.qid)

    def send_end(self) -> Generator:
        """Close this producer's stream (consumes a credit like data)."""
        yield from self.send(END, 0.0)

    # -- receiving ---------------------------------------------------------

    def ack(self) -> None:
        """Consumer finished one message: return a credit.

        The credit message travels the reverse path (latency only) and
        is counted as control traffic — the counter-stream of §7.1.
        """
        if self._fast:
            _CreditReturn(self)
        else:
            self.sim.process(self._return_credit(),
                             name=f"{self.name}.credit")

    def _return_credit(self) -> Generator:
        """Reference (``REPRO_SLOW_FLOW=1``) generator credit return.

        A zero-latency reverse path proceeds straight to the token
        put — the unconditional ``timeout(0.0)`` this used to yield
        bought nothing but an extra event per message (the callback
        path mirrors the same slot shape).
        """
        if self._reverse_latency > 0:
            yield self.sim.timeout(self._reverse_latency)
        self.in_flight_or_queued -= 1
        yield self._tokens.put(True)
        self.trace.emit(self.sim.now, EventKind.CREDIT_GRANT, self.name,
                        nbytes=self.control_bytes, qid=self.qid)
        self._control_bytes.add(self.control_bytes)
        self._control_total.add(self.control_bytes)
