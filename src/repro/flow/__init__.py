"""Push-based data-flow runtime: channels, credits, rate limits, stages."""

from .credits import END, CreditChannel
from .ratelimit import RateLimiter
from .stages import FlowResult, Stage, StageGraph

__all__ = [
    "CreditChannel",
    "END",
    "FlowResult",
    "RateLimiter",
    "Stage",
    "StageGraph",
]
