"""Stage graphs: the push-based data-flow execution runtime.

A :class:`StageGraph` is the physical form of a query in the paper's
architecture: *stages* pinned to processing sites along the data path
(storage CU, storage NIC, compute NIC, near-memory accelerator, CPU),
connected by credit-controlled channels that cross the fabric's links.
Chunks are *pushed*: as soon as a stage produces output it flows
downstream, so the whole pipeline streams — the opposite of the
pull-based Volcano model (§1, §7).

Each stage is one simulation process.  Its loop: take a message from
the inbox, run the chunk through the stage's operator chain (charging
the stage's device for every operator), route the results to output
channels, return the credit.  Stateful operators flush at end of
stream.  ``depends_on`` lets a probe stage wait for its build stage —
the one control dependency hash joins need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generator, Iterable, Optional, Sequence

from ..engine.operators import Emit, PhysicalOp
from ..hardware.device import Device
from ..hardware.storage import StorageMedium
from ..relational.table import Chunk, Table
from ..sim import Event, EventKind, Simulator, Store, Trace
from .credits import END, CreditChannel, flow_fast_path
from .ratelimit import RateLimiter

__all__ = ["Stage", "StageGraph", "FlowResult"]


class Stage:
    """One pipeline stage: an operator chain pinned to a device."""

    def __init__(self, graph: "StageGraph", name: str,
                 device: Optional[Device], location: str,
                 ops: Sequence[PhysicalOp] = (),
                 router: str = "single",
                 depends_on: Iterable[Event] = (),
                 source_table: Optional[Table] = None,
                 medium: Optional[StorageMedium] = None,
                 is_sink: bool = False):
        if router not in ("single", "partition", "broadcast",
                          "round_robin"):
            raise ValueError(f"unknown router {router!r}")
        self.graph = graph
        self.name = name
        self.device = device
        self.location = location
        self.ops = list(ops)
        self.router = router
        self.depends_on = list(depends_on)
        self.source_table = source_table
        self.medium = medium
        self.is_sink = is_sink
        self.inbox = Store(graph.sim, name=f"{graph.name}.{name}.inbox")
        self.inputs: list[CreditChannel] = []
        self.outputs: list[CreditChannel] = []
        self.done: Event = graph.sim.event()
        self.done_at: Optional[float] = None
        self.collected: list[Chunk] = []
        self.rows_in = 0
        self.rows_out = 0
        self.chunks_in = 0
        self.chunks_out = 0
        self._rr = itertools.count()
        self._metric = f"stage.{graph.name}.{name}"
        # Hot-path interning: the per-message series key, the
        # device-stall counter handle, and the flow fast-path flag
        # (resolved once, like CreditChannel does).
        self._inbox_series = f"{self._metric}.inbox"
        self._stall_device = graph.trace.counter_handle(
            f"{self._metric}.stall.device_s")
        self._fast = flow_fast_path()

    # -- execution ---------------------------------------------------------

    def run(self) -> Generator:
        """The stage's simulation process."""
        for evt in self.depends_on:
            yield evt
        self.graph.trace.emit(self.graph.sim.now, EventKind.OP_OPEN,
                              self._metric, label=self.location)
        if self.device is not None and self.device.programmable:
            yield from self._install_kernels()
        if self.source_table is not None:
            yield from self._run_source()
        else:
            yield from self._run_consumer()
        yield from self._flush()
        for out in self.outputs:
            yield from out.send_end()
        self.done_at = self.graph.sim.now
        trace = self.graph.trace
        trace.emit(self.done_at, EventKind.OP_CLOSE, self._metric,
                   label=self.location)
        trace.add(f"{self._metric}.rows_in", self.rows_in)
        trace.add(f"{self._metric}.rows_out", self.rows_out)
        trace.add(f"{self._metric}.chunks_in", self.chunks_in)
        trace.add(f"{self._metric}.chunks_out", self.chunks_out)
        self.done.succeed(self.name)

    def _install_kernels(self) -> Generator:
        """Program an ISA-less accelerator with this stage's kernels.

        §7.2: accelerators are configured through register writes and
        logic installation, not instructions.  Kernel compilation also
        re-checks that every operator *has* a kernel form — stateful
        operators reaching a programmable device is a placement bug.
        """
        from ..engine.kernels import (
            KernelUnsupported,
            compile_kernel,
            install_kernel,
        )
        for op in self.ops:
            # Fused ops install per original part: the register writes
            # and logic bits (and their simulated cost) are a property
            # of the operators, not of how the host batches them.
            for part in op.fused_parts():
                try:
                    kernel = compile_kernel(part)
                except KernelUnsupported as exc:
                    raise RuntimeError(
                        f"stage {self.name!r}: operator {part.name!r} "
                        f"cannot run on programmable device "
                        f"{self.device.name!r}: {exc}") from exc
                yield from install_kernel(self.device, kernel)

    def _run_source(self) -> Generator:
        for chunk in self.source_table.chunks:
            if chunk.num_rows == 0:
                continue
            if self.medium is not None:
                yield from self.medium.read(chunk.nbytes)
            yield from self._process(chunk)

    def _run_consumer(self) -> Generator:
        remaining = len(self.inputs)
        if remaining == 0:
            raise RuntimeError(
                f"stage {self.name!r} has no inputs and no source")
        sim, trace, inbox = self.graph.sim, self.graph.trace, self.inbox
        fast = self._fast
        # Prebound series list + inlined tick: one sample per message.
        # (A consumer always samples at least once — one END per
        # input — so creating the series entry up front adds no key.)
        samples = trace.series[self._inbox_series]
        while remaining > 0:
            if fast and inbox.items and not inbox._putters:
                # Message already queued: pop it directly and claim
                # the StoreGet success slot with a bare timeout —
                # same (time, seq) position, no event dispatch.
                channel, payload = inbox.items.pop(0)
                yield sim.timeout(0.0)
            else:
                channel, payload = yield inbox.get()
            now = sim.now
            if now > trace.clock:
                trace.clock = now
            samples.append((now, len(inbox)))
            if payload is END:
                remaining -= 1
            else:
                yield from self._process(payload)
            channel.ack()

    def _process(self, chunk: Chunk) -> Generator:
        self.rows_in += chunk.num_rows
        self.chunks_in += 1
        # A busy span per chunk: the per-stage utilization and
        # critical-path evidence the paper's offloading argument needs.
        trace = self.graph.trace
        span = trace.open_span(self._metric, self.graph.sim.now)
        try:
            emits = yield from self._apply(chunk, start=0)
        finally:
            trace.close_span(span, self.graph.sim.now)
        yield from self._route(emits)

    def _charge(self, kind: str, nbytes: float) -> Generator:
        """Charge the stage device, attributing slot-wait as a stall.

        The difference between the measured execute time and the
        device's uncontended :meth:`~repro.hardware.device.Device.
        service_time` is time spent queued behind other work on the
        device — the "device-busy" bucket of the backpressure report.
        """
        before = self.graph.sim.now
        yield from self.device.execute(kind, nbytes)
        stall = ((self.graph.sim.now - before)
                 - self.device.service_time(kind, nbytes))
        if stall > 1e-12:
            self._stall_device.add(stall)

    def _apply(self, chunk: Chunk, start: int) -> Generator:
        """Run ``chunk`` through ops[start:]; returns resulting emits."""
        emits = [Emit(chunk)]
        for op in self.ops[start:]:
            produced: list[Emit] = []
            for emit in emits:
                if self.device is not None:
                    yield from self._charge(
                        op.kind, op.charge_bytes(emit.chunk))
                    for kind, nbytes in op.extra_charges(emit.chunk):
                        yield from self._charge(kind, nbytes)
                produced.extend(op.process(emit.chunk))
            emits = produced
            if not emits:
                break
        return emits

    def _flush(self) -> Generator:
        """End of stream: flush stateful operators in chain order."""
        for index, op in enumerate(self.ops):
            for emit in op.finish():
                if self.device is not None:
                    yield from self._charge(
                        op.kind, emit.chunk.nbytes)
                downstream = yield from self._apply_tail(
                    emit, start=index + 1)
                yield from self._route(downstream)

    def _apply_tail(self, emit: Emit, start: int) -> Generator:
        if start >= len(self.ops):
            return [emit]
        result = yield from self._apply(emit.chunk, start=start)
        return result

    def _route(self, emits: list[Emit]) -> Generator:
        for emit in emits:
            self.rows_out += emit.chunk.num_rows
            self.chunks_out += 1
            if self.is_sink or not self.outputs:
                self.collected.append(emit.chunk)
                continue
            # Emit is a fusion-segment boundary: settle lazy selection
            # views here so laziness never crosses a channel (the
            # consumer would re-gather per column otherwise).
            emit.chunk = emit.chunk.materialize()
            nbytes = float(emit.chunk.nbytes)
            if self.router == "single":
                yield from self.outputs[0].send(emit.chunk, nbytes)
            elif self.router == "round_robin":
                out = self.outputs[next(self._rr) % len(self.outputs)]
                yield from out.send(emit.chunk, nbytes)
            elif self.router == "broadcast":
                for out in self.outputs:
                    yield from out.send(emit.chunk, nbytes)
            elif self.router == "partition":
                if emit.route is None:
                    raise RuntimeError(
                        f"stage {self.name!r}: partition router needs "
                        f"routed emits (last op must be a PartitionOp)")
                if emit.route >= len(self.outputs):
                    raise RuntimeError(
                        f"stage {self.name!r}: route {emit.route} but "
                        f"only {len(self.outputs)} outputs")
                yield from self.outputs[emit.route].send(emit.chunk, nbytes)

    # -- results ---------------------------------------------------------

    def result_table(self) -> Table:
        """Collected chunks as a table (sinks only)."""
        if not self.collected:
            raise RuntimeError(
                f"stage {self.name!r} collected nothing "
                "(not a sink, or the query produced no rows)")
        table = Table(self.collected[0].schema)
        for chunk in self.collected:
            table.append(chunk)
        return table

    def __repr__(self):
        return f"<Stage {self.name} @ {self.location}>"


@dataclass
class FlowResult:
    """Outcome of running a stage graph."""

    tables: dict[str, Table]
    elapsed: float
    started_at: float
    finished_at: float
    trace: Trace
    stages: dict[str, "Stage"] = field(default_factory=dict)

    def table(self, sink: str = "") -> Table:
        """The (single, by default) sink's result table."""
        if sink:
            return self.tables[sink]
        if len(self.tables) != 1:
            raise ValueError(
                f"specify a sink: have {sorted(self.tables)}")
        return next(iter(self.tables.values()))


class StageGraph:
    """A set of stages plus the channels wiring them together."""

    def __init__(self, fabric, name: str = "q0",
                 default_credits: int = 8, qid: int = 0):
        self.fabric = fabric
        self.sim: Simulator = fabric.sim
        self.trace: Trace = fabric.trace
        self.name = name
        # Query context id (serving runs): stage processes run scoped
        # under it so every event they cause — including ones emitted
        # from shared hardware code — is tenant-attributable.
        self.qid = qid
        self.default_credits = default_credits
        self.stages: dict[str, Stage] = {}
        self.channels: list[CreditChannel] = []
        self.started_at: Optional[float] = None
        self._started = False
        self._span = None

    # -- construction ------------------------------------------------------

    def _add(self, stage: Stage) -> Stage:
        if stage.name in self.stages:
            raise ValueError(f"duplicate stage name {stage.name!r}")
        self.stages[stage.name] = stage
        return stage

    def source(self, name: str, table: Table,
               medium: Optional[StorageMedium] = None,
               location: Optional[str] = None,
               site: Optional[str] = None,
               ops: Sequence[PhysicalOp] = (),
               router: str = "single") -> Stage:
        """A stage that reads ``table`` (off ``medium`` if given).

        ``site`` optionally charges the ops to a fabric device (e.g.
        a storage CU filtering as it reads); otherwise ops are free —
        pass none in that case.
        """
        device = self.fabric.site_device(site) if site else None
        if location is None:
            location = (self.fabric.site_location(site) if site
                        else self.fabric.storage_location)
        return self._add(Stage(self, name, device, location, ops=ops,
                               router=router, source_table=table,
                               medium=medium))

    def stage(self, name: str, site: str,
              ops: Sequence[PhysicalOp],
              router: str = "single",
              depends_on: Iterable[Event] = ()) -> Stage:
        """A processing stage pinned to a fabric site."""
        device = self.fabric.site_device(site)
        location = self.fabric.site_location(site)
        return self._add(Stage(self, name, device, location, ops=ops,
                               router=router, depends_on=depends_on))

    def sink(self, name: str, site: str,
             ops: Sequence[PhysicalOp] = (),
             depends_on: Iterable[Event] = ()) -> Stage:
        """A terminal stage that collects its output chunks."""
        device = self.fabric.site_device(site)
        location = self.fabric.site_location(site)
        return self._add(Stage(self, name, device, location, ops=ops,
                               depends_on=depends_on, is_sink=True))

    def connect(self, src: Stage, dst: Stage,
                credits: Optional[int] = None,
                rate_limiter: Optional[RateLimiter] = None,
                cpu_mediator: Optional[Device] = None) -> CreditChannel:
        """Wire ``src`` to ``dst`` across the fabric route between them."""
        links = self.fabric.route(src.location, dst.location)
        channel = CreditChannel(
            self.sim, self.trace,
            name=f"{self.name}.{src.name}->{dst.name}",
            links=links, inbox=dst.inbox,
            credits=credits if credits is not None else
            self.default_credits,
            rate_limiter=rate_limiter, cpu_mediator=cpu_mediator,
            actor=f"{self.name}.{src.name}",
            direction=f"{src.location}->{dst.location}",
            qid=self.qid)
        src.outputs.append(channel)
        dst.inputs.append(channel)
        self.channels.append(channel)
        return channel

    # -- execution ---------------------------------------------------------

    def start(self) -> None:
        """Launch every stage as a simulation process."""
        if self._started:
            raise RuntimeError("stage graph already started")
        self._validate()
        self._started = True
        self.started_at = self.sim.now
        self._span = self.trace.open_span(f"graph.{self.name}",
                                          self.sim.now)
        self.trace.add(f"graph.{self.name}.stages", len(self.stages))
        self.trace.add(f"graph.{self.name}.channels",
                       len(self.channels))
        for stage in self.stages.values():
            proc = self.sim.process(stage.run(),
                                    name=f"{self.name}.{stage.name}")
            if self.qid:
                # Serving context: tag every event this stage's
                # process (and the device/storage code it drives)
                # emits with the owning query.  The kernel sets/
                # resets ``current_qid`` around each resume — same
                # dynamic extent as a :meth:`Trace.scoped` wrapper
                # without the extra generator frame per step.
                proc._scope = (self.trace, self.qid)

    def _validate(self) -> None:
        for stage in self.stages.values():
            if stage.source_table is None and not stage.inputs:
                raise RuntimeError(
                    f"stage {stage.name!r} has no inputs; "
                    "connect it or make it a source")

    def result(self) -> FlowResult:
        """Collect results (call after the simulator has run)."""
        finished = [s.done_at for s in self.stages.values()]
        if any(t is None for t in finished):
            unfinished = [s.name for s in self.stages.values()
                          if s.done_at is None]
            raise RuntimeError(f"stages never finished: {unfinished} "
                               "(likely a wiring or deadlock problem)")
        tables = {s.name: s.result_table()
                  for s in self.stages.values()
                  if s.is_sink and s.collected}
        finished_at = max(finished)
        if self._span is not None and self._span.end is None:
            self.trace.close_span(self._span, finished_at)
        return FlowResult(tables=tables,
                          elapsed=finished_at - self.started_at,
                          started_at=self.started_at,
                          finished_at=finished_at,
                          trace=self.trace,
                          stages=dict(self.stages))

    def run(self) -> FlowResult:
        """Start, run the fabric to completion, and collect results."""
        self.start()
        self.fabric.run()
        return self.result()
