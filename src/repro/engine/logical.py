"""Logical query plans and the fluent query builder.

A logical plan is a small tree of relational nodes.  Both engines
execute the *same* logical plan — the Volcano engine interprets it
pull-based on the CPU, the data-flow engine compiles it into placed,
push-based stages — which is what makes their results directly
comparable (the correctness oracle of the whole reproduction).

Each node knows its output schema and can estimate its output
cardinality from catalog statistics; the optimizer builds its
movement-cost model on those two methods.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from ..relational.catalog import Catalog
from ..relational.expressions import Expression
from ..relational.schema import DataType, Field, Schema

__all__ = [
    "AggSpec",
    "PlanNode",
    "Scan",
    "Filter",
    "Project",
    "Map",
    "Aggregate",
    "Join",
    "Sort",
    "Limit",
    "Query",
]

_node_ids = itertools.count()


@dataclass(frozen=True)
class AggSpec:
    """One aggregate: ``AggSpec("sum", "l_extendedprice", "revenue")``."""

    op: str              # sum | count | min | max | avg
    column: str = ""     # empty for count(*)
    alias: str = ""

    VALID_OPS = ("sum", "count", "min", "max", "avg")

    def __post_init__(self):
        if self.op not in self.VALID_OPS:
            raise ValueError(f"unknown aggregate {self.op!r}")
        if self.op != "count" and not self.column:
            raise ValueError(f"aggregate {self.op!r} requires a column")
        if not self.alias:
            object.__setattr__(
                self, "alias",
                f"{self.op}_{self.column}" if self.column else "count")

    @property
    def result_dtype(self) -> str:
        if self.op == "count":
            return DataType.INT64
        return DataType.FLOAT64


class PlanNode:
    """Base class for logical plan nodes."""

    def __init__(self, children: Sequence["PlanNode"]):
        self.node_id = next(_node_ids)
        self.children = list(children)

    def output_schema(self, catalog: Catalog) -> Schema:
        raise NotImplementedError

    def estimate_rows(self, catalog: Catalog) -> float:
        raise NotImplementedError

    def estimate_bytes(self, catalog: Catalog) -> float:
        """Estimated output volume, the optimizer's core quantity."""
        return (self.estimate_rows(catalog)
                * self.output_schema(catalog).row_nbytes)

    def walk(self):
        """All nodes, depth-first, children before parents."""
        for child in self.children:
            yield from child.walk()
        yield self

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__}#{self.node_id} {self.describe()}>"


class Scan(PlanNode):
    """Read a named table from storage."""

    def __init__(self, table: str, columns: Optional[list[str]] = None):
        super().__init__([])
        self.table = table
        self.columns = columns

    def output_schema(self, catalog: Catalog) -> Schema:
        schema = catalog.schema(self.table)
        if self.columns is not None:
            schema = schema.project(self.columns)
        return schema

    def estimate_rows(self, catalog: Catalog) -> float:
        return float(catalog.stats(self.table).rows)

    def describe(self) -> str:
        cols = "*" if self.columns is None else ",".join(self.columns)
        return f"scan {self.table}({cols})"


class Filter(PlanNode):
    """Keep rows satisfying a predicate."""

    def __init__(self, child: PlanNode, predicate: Expression):
        super().__init__([child])
        self.predicate = predicate

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def selectivity(self, catalog: Catalog) -> float:
        stats = self._column_stats(catalog)
        return self.predicate.estimate_selectivity(stats)

    def _column_stats(self, catalog: Catalog) -> Optional[dict]:
        # Find the base table below to source column stats.
        node = self.child
        while node.children:
            node = node.children[0]
        if isinstance(node, Scan) and node.table in catalog:
            return catalog.stats(node.table).column_dict()
        return None

    def estimate_rows(self, catalog: Catalog) -> float:
        return self.child.estimate_rows(catalog) * self.selectivity(catalog)

    def describe(self) -> str:
        return f"filter {self.predicate!r}"


class Project(PlanNode):
    """Keep a subset of columns."""

    def __init__(self, child: PlanNode, columns: list[str]):
        super().__init__([child])
        self.columns = list(columns)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog).project(self.columns)

    def estimate_rows(self, catalog: Catalog) -> float:
        return self.child.estimate_rows(catalog)

    def describe(self) -> str:
        return f"project {','.join(self.columns)}"


class Map(PlanNode):
    """Append computed columns (scalar expressions over the input).

    ``exprs`` maps new column names to expressions; existing columns
    pass through unchanged.  Computed columns are FLOAT64 (the result
    type of the vectorized arithmetic kernel).
    """

    def __init__(self, child: PlanNode, exprs: dict):
        super().__init__([child])
        if not exprs:
            raise ValueError("map requires at least one expression")
        self.exprs = dict(exprs)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.output_schema(catalog)
        fields = list(child_schema.fields)
        for name in self.exprs:
            if name in child_schema:
                raise ValueError(
                    f"computed column {name!r} shadows an input column")
            fields.append(Field(name, DataType.FLOAT64))
        return Schema(fields)

    def estimate_rows(self, catalog: Catalog) -> float:
        return self.child.estimate_rows(catalog)

    def describe(self) -> str:
        return f"map {','.join(self.exprs)}"


class Aggregate(PlanNode):
    """Group-by aggregation (no groups = scalar aggregate)."""

    def __init__(self, child: PlanNode, group_by: list[str],
                 aggs: list[AggSpec]):
        super().__init__([child])
        if not aggs:
            raise ValueError("aggregate requires at least one AggSpec")
        self.group_by = list(group_by)
        self.aggs = list(aggs)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        child_schema = self.child.output_schema(catalog)
        fields = [child_schema.field(g) for g in self.group_by]
        fields += [Field(a.alias, a.result_dtype) for a in self.aggs]
        return Schema(fields)

    def estimate_rows(self, catalog: Catalog) -> float:
        if not self.group_by:
            return 1.0
        # Distinct-product estimate capped by input rows.
        node = self.child
        while node.children:
            node = node.children[0]
        groups = 1.0
        if isinstance(node, Scan) and node.table in catalog:
            stats = catalog.stats(node.table)
            for g in self.group_by:
                if g in stats.columns:
                    groups *= max(1, stats.columns[g].distinct)
                else:
                    groups *= 100
        else:
            groups = 100.0 ** len(self.group_by)
        return min(groups, self.child.estimate_rows(catalog))

    def describe(self) -> str:
        aggs = ",".join(a.alias for a in self.aggs)
        return f"agg [{','.join(self.group_by)}] -> {aggs}"


class Join(PlanNode):
    """Equi hash join; optionally partitioned across compute nodes."""

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_key: str, right_key: str):
        super().__init__([left, right])
        self.left_key = left_key
        self.right_key = right_key

    @property
    def left(self) -> PlanNode:
        return self.children[0]

    @property
    def right(self) -> PlanNode:
        return self.children[1]

    def output_schema(self, catalog: Catalog) -> Schema:
        left_schema = self.left.output_schema(catalog)
        right_schema = self.right.output_schema(catalog)
        # Disambiguate clashes with an r_ prefix (right side).
        clashes = set(left_schema.names) & set(right_schema.names)
        fields = list(left_schema.fields)
        for f in right_schema.fields:
            name = f"r_{f.name}" if f.name in clashes else f.name
            fields.append(Field(name, f.dtype, f.width))
        return Schema(fields)

    def right_output_name(self, name: str, catalog: Catalog) -> str:
        """The output column name of a right-side column."""
        left_names = set(self.left.output_schema(catalog).names)
        return f"r_{name}" if name in left_names else name

    def estimate_rows(self, catalog: Catalog) -> float:
        left_rows = self.left.estimate_rows(catalog)
        right_rows = self.right.estimate_rows(catalog)
        # FK-join style estimate: |L| * |R| / max(distinct keys).
        distinct = max(right_rows, 1.0)
        node = self.right
        while node.children:
            node = node.children[0]
        if isinstance(node, Scan) and node.table in catalog:
            stats = catalog.stats(node.table)
            if self.right_key in stats.columns:
                distinct = max(1, stats.columns[self.right_key].distinct)
        return left_rows * right_rows / distinct

    def describe(self) -> str:
        return f"join {self.left_key} = {self.right_key}"


class Sort(PlanNode):
    """Total order by one or more columns (ascending)."""

    def __init__(self, child: PlanNode, keys: list[str]):
        super().__init__([child])
        if not keys:
            raise ValueError("sort requires at least one key")
        self.keys = list(keys)

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def estimate_rows(self, catalog: Catalog) -> float:
        return self.child.estimate_rows(catalog)

    def describe(self) -> str:
        return f"sort {','.join(self.keys)}"


class Limit(PlanNode):
    """Keep the first ``n`` rows."""

    def __init__(self, child: PlanNode, n: int):
        super().__init__([child])
        if n < 0:
            raise ValueError("limit must be non-negative")
        self.n = n

    @property
    def child(self) -> PlanNode:
        return self.children[0]

    def output_schema(self, catalog: Catalog) -> Schema:
        return self.child.output_schema(catalog)

    def estimate_rows(self, catalog: Catalog) -> float:
        return min(float(self.n), self.child.estimate_rows(catalog))

    def describe(self) -> str:
        return f"limit {self.n}"


class Query:
    """Fluent builder over logical plans.

    >>> plan = (Query.scan("lineitem")
    ...         .filter(col("l_quantity") > 45)
    ...         .project(["l_orderkey", "l_extendedprice"])
    ...         .aggregate(["l_orderkey"], [AggSpec("sum", "l_extendedprice")])
    ...         .plan)
    """

    def __init__(self, plan: PlanNode):
        self.plan = plan

    @classmethod
    def scan(cls, table: str,
             columns: Optional[list[str]] = None) -> "Query":
        return cls(Scan(table, columns))

    def filter(self, predicate: Expression) -> "Query":
        return Query(Filter(self.plan, predicate))

    def project(self, columns: list[str]) -> "Query":
        return Query(Project(self.plan, columns))

    def with_column(self, name: str, expr: Expression) -> "Query":
        """Append a computed column, e.g.
        ``.with_column("net", col("price") * (lit(1) - col("disc")))``."""
        return Query(Map(self.plan, {name: expr}))

    def aggregate(self, group_by: list[str],
                  aggs: list[AggSpec]) -> "Query":
        return Query(Aggregate(self.plan, group_by, aggs))

    def count(self) -> "Query":
        """COUNT(*) — the query §4.4 runs entirely on a NIC."""
        return Query(Aggregate(self.plan, [], [AggSpec("count")]))

    def join(self, other: "Query", left_key: str,
             right_key: str) -> "Query":
        return Query(Join(self.plan, other.plan, left_key, right_key))

    def sort(self, keys: list[str]) -> "Query":
        return Query(Sort(self.plan, keys))

    def limit(self, n: int) -> "Query":
        return Query(Limit(self.plan, n))
