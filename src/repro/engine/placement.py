"""Operator placement onto fabric sites.

A :class:`Placement` maps each logical plan node to the site chain
that will host it.  Most nodes get one site; an Aggregate gets a
*chain* — partial aggregation at the first site, merge stages at the
middle sites, the final (stateful) merge at the last — which is how
§4.4's staged group-by pipeline is expressed.

Policies:

* :func:`cpu_only` — everything on the host CPU: the conventional
  engine's placement, the baseline of every experiment.
* :func:`pushdown` — greedy offload: each streamable operator is
  placed at the *earliest* site along the data path that supports its
  operation kind, so reductive work happens as close to the data's
  origin as possible (§3–§5).  Stateful operators stay on the CPU,
  except scalar COUNT/aggregates, which §4.4 argues can complete on
  the receiving NIC.

The optimizer (:mod:`repro.optimizer`) enumerates many placements and
ranks them; these two are the endpoints of that spectrum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.device import OpKind
from ..hardware.presets import HeterogeneousFabric
from .logical import (Aggregate, Filter, Join, Limit, Map, PlanNode,
                      Project, Scan, Sort)

__all__ = ["Placement", "data_path_sites", "cpu_only", "pushdown",
           "PlacementError"]


class PlacementError(Exception):
    """A placement references a missing site or an unsupported kind."""


@dataclass
class Placement:
    """Assignment of logical nodes to site chains."""

    sites: dict[int, list[str]] = field(default_factory=dict)
    result_site: str = "compute0.cpu"
    partitions: int = 1          # n-way distributed join (F4)
    name: str = "custom"

    def chain(self, node: PlanNode) -> list[str]:
        if node.node_id not in self.sites:
            raise PlacementError(
                f"no placement for node {node!r}")
        return self.sites[node.node_id]

    def site(self, node: PlanNode) -> str:
        """The single (last) site of a node's chain."""
        return self.chain(node)[-1]

    def validate(self, plan: PlanNode,
                 fabric: HeterogeneousFabric) -> None:
        """Check that every referenced site exists and supports its op."""
        for node in plan.walk():
            if isinstance(node, Scan):
                continue
            for site in self.chain(node):
                if not fabric.has_site(site):
                    raise PlacementError(
                        f"site {site!r} absent from fabric "
                        f"(node {node!r})")
                device = fabric.site_device(site)
                kind = _node_kind(node)
                if not device.supports(kind):
                    raise PlacementError(
                        f"device at {site!r} does not support "
                        f"{kind!r} (node {node!r})")


def _node_kind(node: PlanNode) -> str:
    """The device capability a node's operator needs."""
    if isinstance(node, Filter):
        return node.predicate.op_kind()
    if isinstance(node, (Project, Map)):
        return OpKind.PROJECT
    if isinstance(node, Aggregate):
        return OpKind.AGGREGATE
    if isinstance(node, Join):
        return OpKind.JOIN_PROBE
    if isinstance(node, Sort):
        return OpKind.SORT
    if isinstance(node, Limit):
        return OpKind.GENERIC
    return OpKind.GENERIC


def data_path_sites(fabric: HeterogeneousFabric,
                    node: int = 0) -> list[str]:
    """Sites in data-path order for compute node ``node`` (Figure 6)."""
    candidates = ["storage.cu", "storage.nic", f"compute{node}.nic",
                  f"compute{node}.nearmem", f"compute{node}.cpu"]
    return [s for s in candidates if fabric.has_site(s)]


def cpu_only(plan: PlanNode, fabric: HeterogeneousFabric,
             node: int = 0) -> Placement:
    """Everything on the host CPU — the conventional placement."""
    cpu = fabric.cpu_site(node)
    sites = {}
    for n in plan.walk():
        if isinstance(n, Aggregate):
            sites[n.node_id] = [cpu, cpu]
        else:
            sites[n.node_id] = [cpu]
    return Placement(sites=sites, result_site=cpu, name="cpu-only")


def pushdown(plan: PlanNode, fabric: HeterogeneousFabric,
             node: int = 0, staged_aggregation: bool = True,
             count_on_nic: bool = True,
             presort_runs: bool = False) -> Placement:
    """Greedy offload along the data path.

    Walks each pipeline from its scan upward, keeping a cursor into
    the data-path site list: an operator is placed at the earliest
    site at-or-after the cursor whose device supports its kind, and
    the cursor advances there (data never flows backward).
    """
    path = data_path_sites(fabric, node)
    cpu = fabric.cpu_site(node)
    nic_site = f"compute{node}.nic"
    sites: dict[int, list[str]] = {}
    cursors: dict[int, int] = {}     # node_id -> path index reached

    def place_streaming(n: PlanNode, kind: str) -> None:
        start = max((cursors.get(c.node_id, 0) for c in n.children),
                    default=0)
        for idx in range(start, len(path)):
            if fabric.site_device(path[idx]).supports(kind):
                sites[n.node_id] = [path[idx]]
                cursors[n.node_id] = idx
                return
        sites[n.node_id] = [cpu]
        cursors[n.node_id] = len(path) - 1

    for n in plan.walk():
        if isinstance(n, Scan):
            sites[n.node_id] = [path[0] if path else cpu]
            cursors[n.node_id] = 0
        elif isinstance(n, (Filter, Project, Map)):
            place_streaming(n, _node_kind(n))
        elif isinstance(n, Aggregate):
            start = max((cursors.get(c.node_id, 0) for c in n.children),
                        default=0)
            chain = [s for s in path[start:]
                     if fabric.site_device(s).supports(OpKind.AGGREGATE)]
            if not staged_aggregation:
                chain = chain[:1]
            # Final merge: a NIC can finish scalar aggregates (§4.4);
            # grouped aggregates finish on the CPU.
            if (count_on_nic and not n.group_by
                    and fabric.has_site(nic_site)):
                final = nic_site
            else:
                final = cpu
            if not chain or chain[-1] != final:
                chain = chain + [final]
            if len(chain) == 1:
                chain = [final, final]
            sites[n.node_id] = chain
            cursors[n.node_id] = len(path) - 1
        elif isinstance(n, Sort) and presort_runs:
            # §3.3 pre-sorting: generate sorted runs at the earliest
            # SORT-capable site, merge them (cheaply) on the CPU.
            start = max((cursors.get(c.node_id, 0) for c in n.children),
                        default=0)
            run_site = next(
                (s for s in path[start:]
                 if fabric.site_device(s).supports(OpKind.SORT)
                 and s != cpu), None)
            if run_site is not None:
                sites[n.node_id] = [run_site, cpu]
            else:
                sites[n.node_id] = [cpu]
            cursors[n.node_id] = len(path) - 1
        elif isinstance(n, (Join, Sort, Limit)):
            sites[n.node_id] = [cpu]
            cursors[n.node_id] = len(path) - 1
    return Placement(sites=sites, result_site=cpu, name="pushdown")
