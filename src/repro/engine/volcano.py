"""The pull-based Volcano engine — the baseline the paper critiques.

Classic iterator execution (Graefe's Volcano, cited as [30]): each
operator exposes ``next()``, the root pulls, and every byte of every
table is hauled from storage across the full data path (network, PCIe,
memory bus, caches) into the CPU before any operator looks at it.
Processing happens exclusively on the host cores; the fabric's smart
devices sit idle.

The engine still produces exact answers over the real data — it is
the correctness oracle for the data-flow engine and the cost baseline
for every experiment.

``next()`` methods are simulation generators: they yield simulation
events (device time, link transfers) and return the next chunk or
``None``, so the pull-based control flow is faithfully interleaved
with the hardware model.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..hardware.device import Device, OpKind
from ..hardware.presets import HeterogeneousFabric
from ..relational.catalog import Catalog
from ..relational.table import Chunk, Table
from ..sim import EventKind
from .logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Map,
    PlanNode,
    Project,
    Query,
    Scan,
    Sort,
)
from .fusion import fuse_ops, fusion_enabled
from .operators import (
    FilterOp,
    HashJoinBuild,
    HashJoinProbe,
    JoinState,
    LimitOp,
    MapOp,
    MergeAggregate,
    PartialAggregate,
    ProjectOp,
    SortOp,
)
from .results import QueryResult, TraceSnapshot

__all__ = ["VolcanoEngine"]


class _Iterator:
    """Base pull iterator; ``next()`` is a simulation generator."""

    def next(self) -> Generator:
        raise NotImplementedError


class _ScanIter(_Iterator):
    """Pulls chunks off storage, across the fabric, into the CPU."""

    def __init__(self, engine: "VolcanoEngine", node: Scan,
                 skip: Optional[set[int]] = None):
        self.engine = engine
        self.node = node
        self.table = engine.catalog.table(node.table)
        self.skip = skip or set()
        self._index = 0

    def next(self) -> Generator:
        chunks = self.table.chunks
        while self._index < len(chunks):
            chunk = chunks[self._index]
            self._index += 1
            if chunk.num_rows == 0:
                continue
            if self._index - 1 in self.skip:
                self.engine.fabric.trace.add("zonemap.pruned_chunks", 1)
                continue
            yield from self.engine.fetch_chunk(self.table.name,
                                               self._index - 1, chunk)
            if self.node.columns is not None:
                yield from self.engine.charge(OpKind.PROJECT, chunk.nbytes)
                chunk = chunk.project(self.node.columns)
            return chunk
        return None


class _StreamIter(_Iterator):
    """Applies a streaming operator (filter/project/limit) per pull."""

    def __init__(self, engine: "VolcanoEngine", child: _Iterator, op):
        self.engine = engine
        self.child = child
        self.op = op

    def next(self) -> Generator:
        while True:
            chunk = yield from self.child.next()
            if chunk is None:
                return None
            yield from self.engine.charge(self.op.kind,
                                          self.op.charge_bytes(chunk))
            # Fused chains report their inner parts' work here; plain
            # streaming ops report nothing extra.  Either way the CPU
            # is charged exactly what the unfused chain would be.
            for kind, nbytes in self.op.extra_charges(chunk):
                yield from self.engine.charge(kind, nbytes)
            emits = self.op.process(chunk)
            if emits:
                # Streaming ops used here are 1-in/<=1-out.
                return emits[0].chunk
        return None


class _AggregateIter(_Iterator):
    """Blocking aggregate: drains its child on the first pull."""

    def __init__(self, engine: "VolcanoEngine", child: _Iterator,
                 node: Aggregate):
        self.engine = engine
        self.child = child
        self.node = node
        self._result: Optional[Chunk] = None
        self._exhausted = False

    def next(self) -> Generator:
        if self._exhausted:
            return None
        catalog = self.engine.catalog
        input_schema = self.node.child.output_schema(catalog)
        partial = PartialAggregate(input_schema, self.node.group_by,
                                   self.node.aggs)
        final = MergeAggregate(input_schema, self.node.group_by,
                               self.node.aggs, final=True,
                               output_schema=self.node.output_schema(
                                   catalog))
        while True:
            chunk = yield from self.child.next()
            if chunk is None:
                break
            yield from self.engine.charge(OpKind.AGGREGATE, chunk.nbytes)
            for emit in partial.process(chunk):
                final.process(emit.chunk)
        out = final.finish()
        self._exhausted = True
        if out:
            yield from self.engine.charge(OpKind.AGGREGATE,
                                          out[0].chunk.nbytes)
            return out[0].chunk
        return None


class _JoinIter(_Iterator):
    """Hash join: drains the build side, then streams probes."""

    def __init__(self, engine: "VolcanoEngine", left: _Iterator,
                 right: _Iterator, node: Join):
        self.engine = engine
        self.left = left
        self.right = right
        self.node = node
        self._probe: Optional[HashJoinProbe] = None

    def _setup(self) -> Generator:
        catalog = self.engine.catalog
        state = JoinState()
        build = HashJoinBuild(self.node.right_key, state)
        build_bytes = 0.0
        while True:
            chunk = yield from self.right.next()
            if chunk is None:
                break
            yield from self.engine.charge(OpKind.JOIN_BUILD, chunk.nbytes)
            build_bytes += chunk.nbytes
            build.process(chunk)
        build.finish()
        # The hash table lives in compute-node DRAM for the whole
        # probe phase — the state that anchors conventional engines.
        self.engine.note_dram(build_bytes)
        right_schema = self.node.right.output_schema(catalog)
        rename = {name: self.node.right_output_name(name, catalog)
                  for name in right_schema.names}
        self._probe = HashJoinProbe(
            self.node.left_key, state,
            self.node.output_schema(catalog), rename)

    def next(self) -> Generator:
        if self._probe is None:
            yield from self._setup()
        while True:
            chunk = yield from self.left.next()
            if chunk is None:
                return None
            yield from self.engine.charge(OpKind.JOIN_PROBE, chunk.nbytes)
            emits = self._probe.process(chunk)
            if emits:
                return emits[0].chunk
        return None


class _SortIter(_Iterator):
    """Blocking sort: drains, sorts, emits once."""

    def __init__(self, engine: "VolcanoEngine", child: _Iterator,
                 node: Sort):
        self.engine = engine
        self.child = child
        self.node = node
        self._done = False

    def next(self) -> Generator:
        if self._done:
            return None
        op = SortOp(self.node.keys)
        total = 0.0
        while True:
            chunk = yield from self.child.next()
            if chunk is None:
                break
            total += chunk.nbytes
            op.process(chunk)
        self.engine.note_dram(total)
        yield from self.engine.charge(OpKind.SORT, total)
        self._done = True
        out = op.finish()
        return out[0].chunk if out else None


class VolcanoEngine:
    """Pull-based execution on the host CPU of one compute node."""

    def __init__(self, fabric: HeterogeneousFabric, catalog: Catalog,
                 node: int = 0, bufferpool=None,
                 use_zonemaps: bool = False):
        self.fabric = fabric
        self.catalog = catalog
        self.node = node
        self.bufferpool = bufferpool
        self.use_zonemaps = use_zonemaps
        self.cpu: Device = fabric.site_device(fabric.cpu_site(node))
        self.cpu_location = fabric.site_location(fabric.cpu_site(node))
        self._dram_noted = 0.0

    # -- cost plumbing -----------------------------------------------------

    def charge(self, kind: str, nbytes: float) -> Generator:
        """CPU time for ``nbytes`` of ``kind`` work."""
        yield from self.cpu.execute(kind, nbytes)

    def fetch_chunk(self, table: str, index: int,
                    chunk: Chunk) -> Generator:
        """Bring one chunk from storage to the CPU (Figure 1's path)."""
        if self.bufferpool is not None:
            yield from self.bufferpool.fetch(table, index, chunk.nbytes)
            # Pool hit or miss, the chunk still crosses DRAM->caches->CPU.
            yield from self.fabric.transfer(
                f"compute{self.node}.dram", self.cpu_location,
                chunk.nbytes, flow="volcano")
        else:
            yield from self.fabric.storage.medium.read(chunk.nbytes)
            yield from self.fabric.transfer(
                self.fabric.storage_location, self.cpu_location,
                chunk.nbytes, flow="volcano")

    def note_dram(self, nbytes: float) -> None:
        """Record operator state held in compute-node DRAM."""
        self._dram_noted += nbytes
        self.fabric.trace.sample(
            f"engine.volcano.node{self.node}.state",
            self.fabric.sim.now, self._dram_noted)

    # -- plan construction -----------------------------------------------------

    def _stream_op(self, node: PlanNode):
        """The streaming operator for a fusable plan node, else None."""
        if isinstance(node, Filter):
            return FilterOp(node.predicate)
        if isinstance(node, Project):
            return ProjectOp(node.columns)
        if isinstance(node, Map):
            return MapOp(node.exprs, node.output_schema(self.catalog))
        return None

    def _build_stream_chain(self, node: PlanNode) -> _Iterator:
        """A maximal Filter/Project/Map chain, fused when enabled.

        Walks down consecutive streaming nodes, handles the zone-map
        pruned Filter-over-Scan at the bottom of the chain, then wraps
        the child iterator with the (possibly fused) operator chain —
        one :class:`_StreamIter` per lowered operator.
        """
        ops = []
        skip: Optional[set[int]] = None
        while True:
            op = self._stream_op(node)
            if op is None:
                break
            ops.append(op)
            if (isinstance(node, Filter) and self.use_zonemaps
                    and isinstance(node.child, Scan)):
                # Zone-map pruning (§2.1): skip chunks whose min/max
                # bounds refute the predicate; the filter still runs
                # over surviving chunks for correctness.
                from ..relational.zonemaps import prunable_chunks
                zonemap = self.catalog.zonemap(node.child.table)
                skip = prunable_chunks(zonemap, node.predicate)
            node = node.child
        ops.reverse()
        if skip is not None:
            child: _Iterator = _ScanIter(self, node, skip=skip)
        else:
            child = self._build(node)
        if fusion_enabled():
            from . import codegen
            ops = fuse_ops(ops, codegen.fabric_context(self.fabric))
        for op in ops:
            child = _StreamIter(self, child, op)
        return child

    def _build(self, node: PlanNode) -> _Iterator:
        if isinstance(node, Scan):
            return _ScanIter(self, node)
        if isinstance(node, (Filter, Project, Map)):
            return self._build_stream_chain(node)
        if isinstance(node, Limit):
            return _StreamIter(self, self._build(node.child),
                               LimitOp(node.n))
        if isinstance(node, Aggregate):
            return _AggregateIter(self, self._build(node.child), node)
        if isinstance(node, Join):
            return _JoinIter(self, self._build(node.left),
                             self._build(node.right), node)
        if isinstance(node, Sort):
            return _SortIter(self, self._build(node.child), node)
        raise TypeError(f"unsupported plan node {node!r}")

    # -- entry point -----------------------------------------------------

    def execute(self, plan) -> QueryResult:
        """Run a plan (or Query) to completion; returns the result."""
        if isinstance(plan, Query):
            plan = plan.plan
        trace = self.fabric.trace
        snapshot = TraceSnapshot(trace)
        started = self.fabric.sim.now
        span = trace.open_span("query.volcano", started)
        trace.emit(started, EventKind.OP_OPEN, "query.volcano")
        self._dram_noted = 0.0
        root = self._build(plan)
        schema = plan.output_schema(self.catalog)
        collected: list[Chunk] = []

        def driver():
            while True:
                chunk = yield from root.next()
                if chunk is None:
                    return
                collected.append(chunk)

        self.fabric.sim.run_process(driver())
        finished = self.fabric.sim.now
        trace.close_span(span, finished)
        trace.emit(finished, EventKind.OP_CLOSE, "query.volcano")
        table = Table(schema)
        for chunk in collected:
            table.append(chunk)
        trace.add("engine.volcano.queries", 1)
        trace.add("engine.volcano.chunks_out", len(collected))
        trace.add("engine.volcano.rows_out", table.num_rows)
        from . import codegen
        codegen.drain_trace_counters(trace)
        return QueryResult(
            table=table,
            elapsed=finished - started,
            engine="volcano",
            movement=snapshot.delta_prefix("movement."),
            counters=snapshot.delta_prefix(""),
            peak_compute_dram=self._dram_noted,
            utilization=snapshot.utilization_delta(
                finished - started, self.fabric.device_slots()),
            started_at=started,
            finished_at=finished,
        )
