"""Physical operators: real, vectorized chunk transformations.

Every operator consumes and produces :class:`~repro.relational.table.Chunk`
objects; the engines wrap them with simulated device time, so the same
implementation runs "on" a storage computational unit, a SmartNIC, a
near-memory accelerator, or a CPU core — only the charged rate differs.

The streaming/stateless-first design mirrors §3.3: filters, projections,
partitioning, and *partial* aggregation are per-chunk (safe to place on
constrained devices); join build, final aggregation and sort carry
state and belong on devices with memory.

The staged group-by of §4.4 is the :class:`PartialAggregate` /
:class:`MergeAggregate` pair: a partial stage collapses duplicates
within each chunk, a merge stage collapses partial states again, and a
final merge (stateful) produces the answer — so a pipeline
``storage.cu -> storage.nic -> compute.nic -> cpu`` each shrinks the
stream that reaches the next stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..hardware.device import OpKind
from ..relational.expressions import Expression
from ..relational.schema import DataType, Field, Schema
from ..relational.table import Chunk

__all__ = [
    "Emit",
    "PhysicalOp",
    "FilterOp",
    "ProjectOp",
    "MapOp",
    "PartitionOp",
    "PartialAggregate",
    "MergeAggregate",
    "HashJoinBuild",
    "HashJoinProbe",
    "JoinState",
    "SortOp",
    "SortRuns",
    "MergeRuns",
    "merge_sorted",
    "LimitOp",
    "partial_state_schema",
    "group_inverse",
]


@dataclass
class Emit:
    """One output chunk, optionally routed to a numbered partition."""

    chunk: Chunk
    route: Optional[int] = None


class PhysicalOp:
    """Base class: a (possibly stateful) chunk transformer."""

    kind: str = OpKind.GENERIC
    stateful: bool = False
    name: str = "op"

    def process(self, chunk: Chunk) -> list[Emit]:
        raise NotImplementedError

    def finish(self) -> list[Emit]:
        """Flush any state at end of stream."""
        return []

    def charge_bytes(self, chunk: Chunk) -> float:
        """Bytes of device work this chunk represents."""
        return float(chunk.nbytes)

    def extra_charges(self, chunk: Chunk) -> list[tuple[str, float]]:
        """Additional (kind, nbytes) device charges per input chunk.

        Composite operators (e.g. the data-center-tax egress, which
        serializes, compresses, and encrypts in one pass) report the
        extra work here; the stage executor charges it alongside the
        primary kind.
        """
        return []

    def fused_parts(self) -> list["PhysicalOp"]:
        """The original operators this op stands for (itself, unless
        fused).  Kernel installation iterates these so a programmable
        device is configured per original operator — fusion must not
        change what gets installed or what that costs."""
        return [self]

    def __repr__(self):
        return f"<{type(self).__name__} {self.name}>"


class FilterOp(PhysicalOp):
    """Apply a predicate; REGEX work if the predicate contains LIKE."""

    def __init__(self, predicate: Expression):
        self.predicate = predicate
        # Compiled once per operator: per-chunk evaluation runs a
        # chain of numpy closures, not a tree walk.
        self._predicate_fn = predicate.compiled()
        self.kind = predicate.op_kind()
        self.name = f"filter({predicate!r})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows == 0:
            return []
        mask = self._predicate_fn(chunk)
        out = chunk.filter(np.asarray(mask, dtype=bool))
        if out.num_rows == 0:
            return []
        return [Emit(out)]


class ProjectOp(PhysicalOp):
    """Keep a subset of columns."""

    kind = OpKind.PROJECT

    def __init__(self, columns: Sequence[str]):
        self.columns = list(columns)
        self.name = f"project({','.join(self.columns)})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows == 0:
            return []
        return [Emit(chunk.project(self.columns))]


class MapOp(PhysicalOp):
    """Append computed columns (vectorized scalar expressions)."""

    kind = OpKind.PROJECT

    def __init__(self, exprs: dict, output_schema: Schema):
        self.exprs = dict(exprs)
        self._expr_fns = [(name, expr.compiled())
                          for name, expr in self.exprs.items()]
        self.output_schema = output_schema
        self.name = f"map({','.join(self.exprs)})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows == 0:
            return []
        columns = dict(chunk.columns)
        for name, fn in self._expr_fns:
            columns[name] = np.asarray(fn(chunk), dtype=np.float64)
        return [Emit(Chunk(self.output_schema, columns))]


class PartitionOp(PhysicalOp):
    """Hash-partition rows by a key column into ``n`` routed outputs.

    This is the exchange operator §4.4 puts on SmartNICs: partitioning
    on the fly so downstream nodes receive co-partitioned streams.
    """

    kind = OpKind.PARTITION

    def __init__(self, key: str, n_partitions: int):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.key = key
        self.n_partitions = n_partitions
        self.name = f"partition({key}, {n_partitions})"

    @staticmethod
    def hash_values(values: np.ndarray, n: int) -> np.ndarray:
        """The shared partition function (build/probe must agree)."""
        mixed = (values.astype(np.int64) * np.int64(0x9E3779B1))
        return (mixed % n + n) % n

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows == 0:
            return []
        parts = self.hash_values(chunk.column(self.key), self.n_partitions)
        emits = []
        for p in range(self.n_partitions):
            mask = parts == p
            if mask.any():
                emits.append(Emit(chunk.filter(mask), route=p))
        return emits


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

def _unique_inverse(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``np.unique(values, return_inverse=True)``, faster for dense ints.

    Integer keys whose value range is comparable to the row count
    (orderkeys, priorities, partition ids) take a counting path: one
    ``bincount`` plus two gathers instead of a sort.  The outputs are
    identical — unique values ascending, inverse indices into them.
    """
    n = len(values)
    if n and values.dtype.kind == "i":
        lo = int(values.min())
        hi = int(values.max())
        span = hi - lo + 1
        if span <= max(1024, 4 * n):
            offsets = values - lo
            counts = np.bincount(offsets, minlength=span)
            present = np.flatnonzero(counts)
            remap = np.empty(span, dtype=np.int64)
            remap[present] = np.arange(len(present), dtype=np.int64)
            return present + lo, remap[offsets]
    return np.unique(values, return_inverse=True)


def group_inverse(chunk: Chunk,
                  group_by: Sequence[str]) -> tuple[Chunk, np.ndarray]:
    """Distinct group rows of a chunk plus each row's group index."""
    n = chunk.num_rows
    if not group_by:
        empty = Chunk(Schema([]), {})
        return empty, np.zeros(n, dtype=np.int64)
    if len(group_by) == 1:
        # Single-key fast path: unique over the plain column (sorted
        # ascending, like the structured-record path, so groups and
        # inverse indices are identical) without building records.
        g = group_by[0]
        codes = chunk.dict_codes(g)
        if codes is not None:
            # Dictionary-encoded key: unique over the int32 codes
            # (bincount counting path) and decode just the survivors.
            # The pool is sorted, so ascending codes are ascending
            # values — groups and inverse match the decoded path.
            unique_codes, inverse = _unique_inverse(codes)
            unique = chunk.dict_pool(g)[unique_codes]
        else:
            unique, inverse = _unique_inverse(chunk.columns[g])
        groups = Chunk(chunk.schema.project([g]), {g: unique})
        return groups, inverse.astype(np.int64)
    dtype = [(g, chunk.columns[g].dtype) for g in group_by]
    records = np.empty(n, dtype=dtype)
    for g in group_by:
        records[g] = chunk.columns[g]
    unique, inverse = np.unique(records, return_inverse=True)
    schema = chunk.schema.project(group_by)
    groups = Chunk(schema, {g: np.ascontiguousarray(unique[g])
                            for g in group_by})
    return groups, inverse.astype(np.int64)


def _state_fields(aggs) -> list[tuple[str, str, str]]:
    """(state column, dtype, source) triples for the partial layout."""
    fields = []
    for agg in aggs:
        if agg.op in ("sum", "avg"):
            fields.append((f"{agg.alias}$sum", DataType.FLOAT64, agg.column))
        if agg.op in ("count", "avg"):
            fields.append((f"{agg.alias}$cnt", DataType.INT64, ""))
        if agg.op == "min":
            fields.append((f"{agg.alias}$min", DataType.FLOAT64, agg.column))
        if agg.op == "max":
            fields.append((f"{agg.alias}$max", DataType.FLOAT64, agg.column))
    # Deduplicate (e.g. several counts share a column).
    seen, unique = set(), []
    for name, dtype, source in fields:
        if name not in seen:
            seen.add(name)
            unique.append((name, dtype, source))
    return unique


def partial_state_schema(input_schema: Schema, group_by: Sequence[str],
                         aggs) -> Schema:
    """Schema of the partial-aggregate state stream."""
    fields = [input_schema.field(g) for g in group_by]
    fields += [Field(name, dtype) for name, dtype, _src in
               _state_fields(aggs)]
    return Schema(fields)


def _reduce_states(groups: Chunk, inverse: np.ndarray, chunk: Chunk,
                   aggs, schema: Schema, from_states: bool) -> Chunk:
    """Collapse rows of ``chunk`` into one state row per group."""
    n_groups = max(1, groups.num_rows) if groups.schema.names else 1
    if groups.schema.names:
        n_groups = groups.num_rows
    columns = dict(groups.columns)
    for name, dtype, source in _state_fields(aggs):
        if from_states:
            values = chunk.column(name)
        elif name.endswith("$cnt"):
            values = np.ones(chunk.num_rows, dtype=np.int64)
        else:
            values = chunk.column(source).astype(np.float64)
        if name.endswith("$min"):
            out = np.full(n_groups, np.inf)
            np.minimum.at(out, inverse, values.astype(np.float64))
        elif name.endswith("$max"):
            out = np.full(n_groups, -np.inf)
            np.maximum.at(out, inverse, values.astype(np.float64))
        else:
            out = np.bincount(inverse, weights=values.astype(np.float64),
                              minlength=n_groups)
            if name.endswith("$cnt"):
                out = out.astype(np.int64)
        columns[name] = out
    return Chunk(schema, columns)


class PartialAggregate(PhysicalOp):
    """Stateless per-chunk pre-aggregation (raw rows -> state rows)."""

    kind = OpKind.AGGREGATE

    def __init__(self, input_schema: Schema, group_by: Sequence[str],
                 aggs):
        self.group_by = list(group_by)
        self.aggs = list(aggs)
        self.state_schema = partial_state_schema(input_schema, group_by,
                                                 aggs)
        self.name = f"partial_agg({','.join(group_by) or '*'})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows == 0:
            return []
        groups, inverse = group_inverse(chunk, self.group_by)
        state = _reduce_states(groups, inverse, chunk, self.aggs,
                               self.state_schema, from_states=False)
        return [Emit(state)]


class MergeAggregate(PhysicalOp):
    """Merge partial states; final=True holds state and emits the answer.

    Non-final merges are stateless (per-chunk) and idempotent, so they
    can be chained along the data path (§4.4's staged group-by).
    """

    kind = OpKind.AGGREGATE

    def __init__(self, input_schema: Schema, group_by: Sequence[str],
                 aggs, final: bool = False,
                 output_schema: Optional[Schema] = None,
                 batch: int = 8,
                 expected_groups: Optional[int] = None):
        self.group_by = list(group_by)
        self.aggs = list(aggs)
        self.state_schema = partial_state_schema(input_schema, group_by,
                                                 aggs)
        self.final = final
        self.stateful = final
        self.output_schema = output_schema
        # Non-final merges coalesce a bounded window of `batch` state
        # chunks before merging: that is what makes *chained* merge
        # stages compound (§4.4) while keeping state bounded, which a
        # NIC can afford.
        self.batch = max(1, batch)
        # For final merges on accelerators: a declared bound on the
        # number of groups.  §4.4 allows aggregates with small results
        # to finish on a NIC; the kernel compiler uses this bound to
        # decide whether the state fits an accelerator's table.
        self.expected_groups = expected_groups
        self._accumulated: list[Chunk] = []
        self.name = ("final_agg" if final else "merge_agg") + \
            f"({','.join(group_by) or '*'})"
        if final and output_schema is None:
            raise ValueError("final merge requires an output schema")

    def _merge(self, chunk: Chunk) -> Chunk:
        groups, inverse = group_inverse(chunk, self.group_by)
        return _reduce_states(groups, inverse, chunk, self.aggs,
                              self.state_schema, from_states=True)

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows == 0:
            return []
        if self.final:
            self._accumulated.append(self._merge(chunk))
            return []
        self._accumulated.append(chunk)
        if len(self._accumulated) < self.batch:
            return []
        window, self._accumulated = self._accumulated, []
        return [Emit(self._merge(Chunk.concat(window)))]

    def finish(self) -> list[Emit]:
        if not self.final:
            if not self._accumulated:
                return []
            window, self._accumulated = self._accumulated, []
            return [Emit(self._merge(Chunk.concat(window)))]
        if self._accumulated:
            state = self._merge(Chunk.concat(self._accumulated))
        else:
            state = Chunk.empty(self.state_schema)
        self._accumulated = []
        return [Emit(self._finalize(state))]

    def _finalize(self, state: Chunk) -> Chunk:
        n = state.num_rows
        if not self.group_by and n == 0:
            # Scalar aggregate over an empty stream: count 0, sums 0.
            state = Chunk(self.state_schema, {
                f.name: np.zeros(1, dtype=f.numpy_dtype)
                for f in self.state_schema.fields})
            n = 1
        columns = {g: state.column(g) for g in self.group_by}
        for agg in self.aggs:
            if agg.op == "sum":
                columns[agg.alias] = state.column(f"{agg.alias}$sum")
            elif agg.op == "count":
                columns[agg.alias] = state.column(f"{agg.alias}$cnt")
            elif agg.op == "min":
                columns[agg.alias] = state.column(f"{agg.alias}$min")
            elif agg.op == "max":
                columns[agg.alias] = state.column(f"{agg.alias}$max")
            elif agg.op == "avg":
                sums = state.column(f"{agg.alias}$sum")
                counts = state.column(f"{agg.alias}$cnt")
                with np.errstate(divide="ignore", invalid="ignore"):
                    columns[agg.alias] = np.where(
                        counts > 0, sums / counts, np.nan)
        return Chunk(self.output_schema, columns)


# ---------------------------------------------------------------------------
# Hash join
# ---------------------------------------------------------------------------

class JoinState:
    """Shared build-side state handed from build to probe."""

    def __init__(self):
        self.build_chunk: Optional[Chunk] = None
        self.sorted_keys: Optional[np.ndarray] = None
        self.sort_order: Optional[np.ndarray] = None

    def install(self, chunk: Chunk, key: str) -> None:
        self.build_chunk = chunk
        keys = chunk.column(key)
        self.sort_order = np.argsort(keys, kind="stable")
        self.sorted_keys = keys[self.sort_order]

    @property
    def ready(self) -> bool:
        return self.build_chunk is not None

    def match(self, probe_keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(probe_indices, build_indices) of all equi matches."""
        left = np.searchsorted(self.sorted_keys, probe_keys, side="left")
        right = np.searchsorted(self.sorted_keys, probe_keys, side="right")
        counts = right - left
        probe_idx = np.repeat(np.arange(len(probe_keys)), counts)
        total = int(counts.sum())
        if total == 0:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64))
        # Ranges [left[i], right[i]) concatenated.
        offsets = np.repeat(right - np.cumsum(counts), counts)
        build_pos = np.arange(total) + offsets
        return probe_idx, self.sort_order[build_pos]


class HashJoinBuild(PhysicalOp):
    """Accumulate the build side; installs state, emits nothing."""

    kind = OpKind.JOIN_BUILD
    stateful = True

    def __init__(self, key: str, state: JoinState):
        self.key = key
        self.state = state
        self._chunks: list[Chunk] = []
        self.name = f"join_build({key})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows:
            self._chunks.append(chunk)
        return []

    def finish(self) -> list[Emit]:
        if self._chunks:
            combined = Chunk.concat(self._chunks)
        else:
            combined = None
        if combined is None:
            # Install an empty build so probes produce nothing.
            empty_keys = np.empty(0, dtype=np.int64)
            state_chunk = Chunk(Schema([Field(self.key, DataType.INT64)]),
                                {self.key: empty_keys})
            self.state.install(state_chunk, self.key)
        else:
            self.state.install(combined, self.key)
        self._chunks = []
        return []


class HashJoinProbe(PhysicalOp):
    """Probe the installed build side, streaming joined chunks."""

    kind = OpKind.JOIN_PROBE

    def __init__(self, probe_key: str, state: JoinState,
                 output_schema: Schema, build_rename: dict[str, str]):
        self.probe_key = probe_key
        self.state = state
        self.output_schema = output_schema
        self.build_rename = build_rename
        self.name = f"join_probe({probe_key})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows == 0:
            return []
        if not self.state.ready:
            raise RuntimeError("probe before build finished")
        probe_idx, build_idx = self.state.match(chunk.column(self.probe_key))
        if len(probe_idx) == 0:
            return []
        probe_rows = chunk.take(probe_idx)
        build_rows = self.state.build_chunk.take(build_idx)
        columns = dict(probe_rows.columns)
        for name in build_rows.schema.names:
            out_name = self.build_rename.get(name, name)
            if out_name in self.output_schema:
                columns[out_name] = build_rows.columns[name]
        # Restrict to the declared output schema (order included).
        columns = {n: columns[n] for n in self.output_schema.names}
        return [Emit(Chunk(self.output_schema, columns))]


# ---------------------------------------------------------------------------
# Sort / limit
# ---------------------------------------------------------------------------

class SortOp(PhysicalOp):
    """Accumulate and sort at end of stream (blocking)."""

    kind = OpKind.SORT
    stateful = True

    def __init__(self, keys: Sequence[str]):
        self.keys = list(keys)
        self._chunks: list[Chunk] = []
        self.name = f"sort({','.join(self.keys)})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows:
            self._chunks.append(chunk)
        return []

    def finish(self) -> list[Emit]:
        if not self._chunks:
            return []
        combined = Chunk.concat(self._chunks)
        self._chunks = []
        # lexsort: last key is primary, so reverse.
        order = np.lexsort([combined.column(k)
                            for k in reversed(self.keys)])
        return [Emit(combined.take(order))]


def _sort_key_records(chunk: Chunk, keys: Sequence[str]) -> np.ndarray:
    """The sort keys of a chunk as one comparable structured array."""
    dtype = [(k, chunk.columns[k].dtype) for k in keys]
    records = np.empty(chunk.num_rows, dtype=dtype)
    for k in keys:
        records[k] = chunk.columns[k]
    return records


def merge_sorted(a: Chunk, b: Chunk, keys: Sequence[str]) -> Chunk:
    """Stable merge of two key-sorted chunks (a true linear merge).

    This is the cheap half of pre-sorted execution: runs arrive
    already ordered, so combining them costs a merge, not a sort.
    """
    if a.num_rows == 0:
        return b
    if b.num_rows == 0:
        return a
    ka = _sort_key_records(a, keys)
    kb = _sort_key_records(b, keys)
    # Stable: equal keys keep a-rows (the earlier run) first.
    insert_at = np.searchsorted(ka, kb, side="right")
    total = a.num_rows + b.num_rows
    b_positions = insert_at + np.arange(b.num_rows)
    from_b = np.zeros(total, dtype=bool)
    from_b[b_positions] = True
    columns = {}
    for name in a.schema.names:
        out = np.empty(total, dtype=a.columns[name].dtype)
        out[from_b] = b.columns[name]
        out[~from_b] = a.columns[name]
        columns[name] = out
    return Chunk(a.schema, columns)


class SortRuns(PhysicalOp):
    """Sort each chunk independently: bounded-state run generation.

    §3.3's "pre-sorting ... probably only to parts of the data rather
    than to the entire data set": a storage CU or NIC can sort one
    chunk at a time without holding the stream, emitting sorted runs
    a downstream merge combines cheaply.
    """

    kind = OpKind.SORT

    def __init__(self, keys: Sequence[str]):
        self.keys = list(keys)
        self.name = f"sort_runs({','.join(self.keys)})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows == 0:
            return []
        order = np.lexsort([chunk.column(k)
                            for k in reversed(self.keys)])
        return [Emit(chunk.take(order))]


class MergeRuns(PhysicalOp):
    """Merge pre-sorted runs into a total order (stateful, at the CPU).

    The device work is GENERIC (a linear merge), not SORT — the point
    of pre-sorting upstream is exactly that the expensive comparison
    work already happened where the data was.
    """

    kind = OpKind.GENERIC
    stateful = True

    def __init__(self, keys: Sequence[str]):
        self.keys = list(keys)
        self._runs: list[Chunk] = []
        self.name = f"merge_runs({','.join(self.keys)})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk.num_rows:
            self._runs.append(chunk)
        return []

    def finish(self) -> list[Emit]:
        if not self._runs:
            return []
        runs, self._runs = self._runs, []
        # Tournament-style pairwise merging: log(k) passes.
        while len(runs) > 1:
            merged = []
            for i in range(0, len(runs) - 1, 2):
                merged.append(merge_sorted(runs[i], runs[i + 1],
                                           self.keys))
            if len(runs) % 2:
                merged.append(runs[-1])
            runs = merged
        return [Emit(runs[0])]


class LimitOp(PhysicalOp):
    """Pass through the first ``n`` rows."""

    kind = OpKind.GENERIC

    def __init__(self, n: int):
        self.n = n
        self._seen = 0
        self.name = f"limit({n})"

    def process(self, chunk: Chunk) -> list[Emit]:
        if self._seen >= self.n or chunk.num_rows == 0:
            return []
        remaining = self.n - self._seen
        if chunk.num_rows > remaining:
            chunk = chunk.slice(0, remaining)
        self._seen += chunk.num_rows
        return [Emit(chunk)]
