"""Pipeline fusion: linear operator chains as one dispatch per morsel.

The paper's streaming argument (§3.3) says operators should process
data *along the movement path* without materialising at every hop.
The engines already express that at the plan level; this module closes
the gap at the execution level.  A maximal linear run of stateless
streaming operators — ``Filter → Project → Map``, optionally
terminated by the ``PartialAggregate`` the run feeds — lowers into a
single :class:`FusedOp` whose ``process()`` walks a list of composed
numpy closures built from each operator's ``Expression.compiled()``
form.  Combined with the selection-vector views
:meth:`repro.relational.table.Chunk.filter` returns, a fused segment
moves one lazy view between steps and materialises only at segment
boundaries (emit, partition, join build/probe, aggregate state
update).

Fusion is a *wall-clock* optimisation and must be invisible to the
simulation.  :class:`FusedOp` therefore reports device work per
original operator: ``charge_bytes`` is the first part's charge and
``extra_charges`` replays the remaining parts' ``(kind, nbytes)``
pairs — computed by actually running the fused pipeline, so the bytes
charged for each part are the bytes of the chunk that part would have
seen unfused, and a part that empties the stream stops the charges
exactly where the unfused executor's early-exit would.  The pipeline
result is memoised so the ``process()`` call that follows the charges
does no second pass.

On top of the closure pipeline, :mod:`repro.engine.codegen` lowers
each fused chain to generated flat source — compiled once per
(pipeline, schema, fabric) fingerprint and cached in-process and on
disk — which replays byte-identical charges.  The closure steps stay
as the reference path and the fallback for anything codegen declines.

``REPRO_NO_FUSE=1`` forces the reference (unfused) path, mirroring
the kernel fast path's ``REPRO_SLOW_KERNEL``; ``REPRO_NO_CODEGEN=1``
keeps fusion but forces the closure pipeline; the regression gate
compares all of them at ``--tolerance 0``.
"""

from __future__ import annotations

import os
from typing import Callable, Optional, Sequence

import numpy as np

from ..relational.table import Chunk
from .operators import (
    Emit,
    FilterOp,
    MapOp,
    PartialAggregate,
    PhysicalOp,
    ProjectOp,
)

__all__ = ["FusedOp", "fuse_ops", "fusion_enabled", "describe_op"]

#: Stateless 1-in/<=1-out streaming operators a fused run may contain.
STREAM_OPS = (FilterOp, ProjectOp, MapOp)

#: Operators that may terminate a run (consume the fused stream).
TERMINAL_OPS = (PartialAggregate,)


def fusion_enabled() -> bool:
    """Whether compilation lowers chains into fused operators.

    Read at compile time (not import time) so tests can flip the
    environment per run — the same contract as ``REPRO_SLOW_KERNEL``.
    """
    return not os.environ.get("REPRO_NO_FUSE")


def _filter_step(part: FilterOp) -> Callable[[Chunk], Optional[Chunk]]:
    predicate = part._predicate_fn

    def step(chunk: Chunk) -> Optional[Chunk]:
        out = chunk.filter(np.asarray(predicate(chunk), dtype=bool))
        return out if out.num_rows else None
    return step


def _project_step(part: ProjectOp) -> Callable[[Chunk], Optional[Chunk]]:
    names = list(part.columns)
    return lambda chunk: chunk.project(names)


def _map_step(part: MapOp) -> Callable[[Chunk], Optional[Chunk]]:
    expr_fns = list(part._expr_fns)
    schema = part.output_schema

    def step(chunk: Chunk) -> Optional[Chunk]:
        columns = dict(chunk.columns)
        for name, fn in expr_fns:
            columns[name] = np.asarray(fn(chunk), dtype=np.float64)
        return Chunk(schema, columns)
    return step


def _generic_step(part: PhysicalOp) -> Callable[[Chunk], Optional[Chunk]]:
    """Fallback for terminal parts: unwrap the single-emit process."""
    def step(chunk: Chunk) -> Optional[Chunk]:
        emits = part.process(chunk)
        return emits[0].chunk if emits else None
    return step


def _compile_step(part: PhysicalOp) -> Callable[[Chunk], Optional[Chunk]]:
    if isinstance(part, FilterOp):
        return _filter_step(part)
    if isinstance(part, ProjectOp):
        return _project_step(part)
    if isinstance(part, MapOp):
        return _map_step(part)
    return _generic_step(part)


class FusedOp(PhysicalOp):
    """A linear chain of streaming operators run as one dispatch.

    ``process()`` threads one chunk through the composed step
    closures; intermediate results are lazy selection views, so a
    filter followed by a projection gathers only the surviving rows
    of the kept columns, once.  The simulation sees the chain
    unfused: one ``(kind, nbytes)`` charge per original part, against
    the bytes that part's input would have had.
    """

    def __init__(self, parts: Sequence[PhysicalOp], context: str = ""):
        parts = list(parts)
        if len(parts) < 2:
            raise ValueError("fusion needs at least two operators")
        for part in parts[:-1]:
            if not isinstance(part, STREAM_OPS):
                raise ValueError(
                    f"cannot fuse non-streaming operator {part.name!r}")
        if not isinstance(parts[-1], STREAM_OPS + TERMINAL_OPS):
            raise ValueError(
                f"cannot fuse trailing operator {parts[-1].name!r}")
        self.parts = parts
        self.kind = parts[0].kind
        self.name = "fused[" + " -> ".join(p.name for p in parts) + "]"
        self._steps = [(part, _compile_step(part)) for part in parts]
        # One-slot memo: the executor charges (running the pipeline)
        # and then calls process() on the same chunk object.
        self._memo_chunk: Optional[Chunk] = None
        self._memo_out: Optional[Chunk] = None
        # Generated-kernel state: resolved lazily against the first
        # chunk's schema (compile-time plans don't thread schemas into
        # fusion, and the disk cache key needs the real input shape).
        # ``False`` marks a pipeline that stays on the closure path.
        self.context = context
        self._kernel = None
        self._entry_schema = None
        self.kernel_origin: Optional[str] = None
        self.kernel_fingerprint: Optional[str] = None

    def _resolve_kernel(self, schema) -> None:
        from . import codegen
        kernel, origin, fingerprint = codegen.resolve(
            self.parts, schema, self.context)
        self._entry_schema = schema
        self._kernel = kernel if kernel is not None else False
        self.kernel_origin = origin
        self.kernel_fingerprint = fingerprint

    def kernel_info(self) -> dict:
        """Resolution state for ``--show-kernel`` and diagnostics."""
        from . import codegen
        source = None
        if self.kernel_fingerprint is not None:
            source = codegen.cached_source(self.kernel_fingerprint)
        return {
            "name": self.name,
            "origin": self.kernel_origin,
            "fingerprint": self.kernel_fingerprint,
            "source": source,
        }

    def fused_parts(self) -> list[PhysicalOp]:
        return list(self.parts)

    def _run(self, chunk: Chunk,
             charges: Optional[list[tuple[str, float]]]) -> Optional[Chunk]:
        """Thread ``chunk`` through the steps, recording part charges.

        The first part's charge is ``charge_bytes`` (reported by the
        executor separately), so recording starts at the second part —
        and stops as soon as a step returns nothing, matching the
        unfused executor, which never charges an operator whose input
        never arrived.
        """
        if chunk.num_rows == 0:
            return None
        if self._entry_schema is not chunk.schema:
            if (self._entry_schema is not None
                    and self._entry_schema.fields == chunk.schema.fields):
                self._entry_schema = chunk.schema
            else:
                self._resolve_kernel(chunk.schema)
        kernel = self._kernel
        if kernel is not False:
            return kernel(chunk, charges)
        current: Optional[Chunk] = chunk
        first = True
        for part, step in self._steps:
            if first:
                first = False
            else:
                if charges is not None:
                    charges.append((part.kind, float(current.nbytes)))
            current = step(current)
            if current is None:
                return None
        return current

    def charge_bytes(self, chunk: Chunk) -> float:
        return self.parts[0].charge_bytes(chunk)

    def extra_charges(self, chunk: Chunk) -> list[tuple[str, float]]:
        charges: list[tuple[str, float]] = []
        self._memo_chunk = chunk
        self._memo_out = self._run(chunk, charges)
        return charges

    def process(self, chunk: Chunk) -> list[Emit]:
        if chunk is self._memo_chunk:
            out = self._memo_out
            self._memo_chunk = self._memo_out = None
        else:
            out = self._run(chunk, None)
        if out is None:
            return []
        return [Emit(out)]


def fuse_ops(ops: Sequence[PhysicalOp],
             context: str = "") -> list[PhysicalOp]:
    """Rewrite an operator chain, fusing maximal linear runs.

    A run is a maximal stretch of streaming operators
    (filter/project/map), optionally extended by the terminal
    operator it feeds (partial aggregation).  Runs of length >= 2
    become one :class:`FusedOp`; everything else passes through
    unchanged, in order.  ``context`` (the fabric fingerprint) keys
    the generated-kernel cache alongside the pipeline itself.
    """
    fused: list[PhysicalOp] = []
    run: list[PhysicalOp] = []

    def close(run: list[PhysicalOp]) -> None:
        if len(run) >= 2:
            fused.append(FusedOp(run, context))
        else:
            fused.extend(run)

    for op in ops:
        if isinstance(op, STREAM_OPS):
            run.append(op)
        elif run and isinstance(op, TERMINAL_OPS):
            run.append(op)
            close(run)
            run = []
        else:
            close(run)
            run = []
            fused.append(op)
    close(run)
    return fused


def describe_op(op: PhysicalOp) -> list[str]:
    """Display lines for one op: fused ops list their parts indented."""
    if isinstance(op, FusedOp):
        lines = [f"fused segment ({len(op.parts)} ops, "
                 f"one dispatch per morsel):"]
        lines += [f"  | {part.name}" for part in op.parts]
        return lines
    return [op.name]
