"""Query results with movement and utilization accounting.

Both engines return a :class:`QueryResult`.  Because multiple queries
can share one fabric (the scheduler does exactly that), per-query
numbers are computed as *deltas* of the fabric trace between query
start and finish, via :class:`TraceSnapshot`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..relational.table import Table
from ..sim import Trace

__all__ = ["TraceSnapshot", "QueryResult"]


class TraceSnapshot:
    """Counter snapshot for computing per-query deltas."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self._at = dict(trace.counters)

    def delta(self, counter: str) -> float:
        return self.trace.counter(counter) - self._at.get(counter, 0.0)

    def delta_prefix(self, prefix: str) -> dict[str, float]:
        out = {}
        for key, value in self.trace.counters.items():
            if key.startswith(prefix):
                diff = value - self._at.get(key, 0.0)
                if diff:
                    out[key[len(prefix):]] = diff
        return out

    def busy_delta(self) -> dict[str, float]:
        """Per-device busy seconds accumulated since the snapshot.

        Parsed from the cumulative ``device.<name>.busy_s`` counters,
        so it works even when several queries share one fabric.
        """
        out = {}
        for key, value in self.delta_prefix("device.").items():
            if key.endswith(".busy_s"):
                out[key[:-len(".busy_s")]] = value
        return out

    def utilization_delta(self, elapsed: float,
                          slots: Optional[dict[str, int]] = None
                          ) -> dict[str, float]:
        """Per-device busy fraction over ``elapsed`` seconds, in [0, 1].

        ``slots`` maps device name to its parallel slot count (busy
        seconds accrue per slot); unknown devices assume one slot.
        """
        if elapsed <= 0:
            return {}
        slots = slots or {}
        out = {}
        for name, busy in self.busy_delta().items():
            capacity = elapsed * max(1, slots.get(name, 1))
            out[name] = min(1.0, max(0.0, busy / capacity))
        return out


@dataclass
class QueryResult:
    """Outcome of executing one query on one engine."""

    table: Table
    elapsed: float
    engine: str
    movement: dict[str, float] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    peak_compute_dram: float = 0.0
    utilization: dict[str, float] = field(default_factory=dict)
    #: Simulation-clock query window (span boundaries).  Several
    #: queries can share one fabric clock, so the critical-path walker
    #: needs the absolute window, not just its width:
    #: ``finished_at - started_at == elapsed`` exactly.
    started_at: float = 0.0
    finished_at: float = 0.0

    def checksum(self) -> str:
        """Canonical content hash of the result table.

        Identical across engines and placements for the same logical
        answer (row order and float summation order are normalized).
        """
        from ..obs import table_checksum
        return table_checksum(self.table)

    @property
    def rows(self) -> int:
        return self.table.num_rows

    @property
    def total_bytes_moved(self) -> float:
        """Bytes moved across all segments (each hop counted once)."""
        return sum(self.movement.values())

    def bytes_on(self, segment: str) -> float:
        """Bytes moved on one segment class (``network``, ``pcie``...)."""
        return self.movement.get(f"{segment}.bytes", 0.0)

    def summary(self) -> dict[str, float]:
        """A flat dict convenient for printing benchmark rows."""
        out = {"engine": self.engine, "rows": self.rows,
               "elapsed_s": self.elapsed,
               "total_moved_bytes": self.total_bytes_moved}
        for segment, value in sorted(self.movement.items()):
            out[f"moved_{segment.replace('.bytes', '')}"] = value
        return out
