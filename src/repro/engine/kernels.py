"""Programming accelerators without an ISA: kernels (§7.2).

The paper: "Some accelerators ... are programmed directly — they lack
an ISA — simply by filling a small set of memory-mapped registers ...
Other accelerators ... require ... the installation of some logic ...
The literature refers to the operational information passed on to
accelerators as *kernels*."

This module compiles physical operators into :class:`Kernel`
descriptions — a register file plus, where register settings cannot
express the operator, installable parsing/matching *logic* — and
charges the installation cost to the target device.  The compiled
form is derived from the operator's real structure:

* a simple comparison filter is pure registers (column id, compare op,
  immediate value);
* a LIKE filter needs a compiled automaton whose size follows the
  pattern (the §3.3 regex accelerator);
* compound predicates need predicate-tree logic proportional to their
  node count;
* projections and partitioners are registers (column bitmap / key +
  fanout + seed);
* aggregation stages need group-hashing logic plus per-aggregate
  registers;
* stateful operators (join build/probe, sort) have no kernel form —
  they need a real ISA and must stay on the CPU
  (:class:`KernelUnsupported`).

Stages install kernels once at start-up on *programmable* devices, so
offload pays a visible setup cost — which is why tiny queries can
lose by offloading (bench E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.device import Device
from ..relational.expressions import (
    And,
    Arith,
    Between,
    Compare,
    Col,
    Const,
    Expression,
    InSet,
    Like,
    Not,
    Or,
)
from .operators import (
    FilterOp,
    HashJoinBuild,
    HashJoinProbe,
    LimitOp,
    MapOp,
    MergeAggregate,
    MergeRuns,
    PartialAggregate,
    PartitionOp,
    PhysicalOp,
    ProjectOp,
    SortOp,
    SortRuns,
)

__all__ = ["Kernel", "KernelUnsupported", "compile_kernel",
           "install_kernel", "installation_time"]

# Installation cost parameters (seconds / bytes-per-second).  A
# register write is a posted MMIO store; logic installs stream over
# the device's control path.
REGISTER_WRITE_TIME = 100e-9
LOGIC_INSTALL_RATE = 1.0e9   # bytes/second of control-path bandwidth
ACCEL_STATE_ROWS = 4096      # max group-state rows an accelerator holds


class KernelUnsupported(Exception):
    """The operator cannot be expressed as an accelerator kernel."""


@dataclass
class Kernel:
    """The operational information shipped to an accelerator."""

    op_name: str
    kind: str
    registers: dict[str, object] = field(default_factory=dict)
    logic_bytes: int = 0

    @property
    def register_count(self) -> int:
        return len(self.registers)

    def describe(self) -> str:
        parts = [f"{self.register_count} regs"]
        if self.logic_bytes:
            parts.append(f"{self.logic_bytes}B logic")
        return f"kernel[{self.op_name}: {', '.join(parts)}]"


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

def _compile_predicate(expr: Expression,
                       registers: dict[str, object],
                       prefix: str = "p") -> int:
    """Fill ``registers`` from a predicate tree; returns logic bytes.

    Simple comparisons are register-only; everything structural
    (boolean combinators, arithmetic, set membership) contributes
    predicate-tree logic; LIKE contributes automaton logic sized by
    its pattern.
    """
    if isinstance(expr, Compare):
        left, right = expr.left, expr.right
        if isinstance(left, Col) and isinstance(right, Const):
            registers[f"{prefix}.col"] = left.name
            registers[f"{prefix}.cmp"] = expr.op
            registers[f"{prefix}.imm"] = right.value
            return 0
        # Column-column or computed comparisons need ALU logic.
        logic = 64
        logic += _compile_operand(left, registers, f"{prefix}.l")
        logic += _compile_operand(right, registers, f"{prefix}.r")
        registers[f"{prefix}.cmp"] = expr.op
        return logic
    if isinstance(expr, Between):
        registers[f"{prefix}.col"] = _operand_name(expr.operand)
        registers[f"{prefix}.lo"] = getattr(expr.low, "value", None)
        registers[f"{prefix}.hi"] = getattr(expr.high, "value", None)
        return 0
    if isinstance(expr, InSet):
        registers[f"{prefix}.col"] = _operand_name(expr.operand)
        registers[f"{prefix}.set_size"] = len(expr.values)
        # The membership table is installed logic.
        return 16 * len(expr.values)
    if isinstance(expr, Like):
        registers[f"{prefix}.col"] = _operand_name(expr.operand)
        # A compiled automaton: states roughly track pattern length.
        return 256 + 32 * len(expr.pattern)
    if isinstance(expr, Not):
        registers[f"{prefix}.not"] = True
        return 16 + _compile_predicate(expr.operand, registers,
                                       f"{prefix}.0")
    if isinstance(expr, (And, Or)):
        gate = "and" if isinstance(expr, And) else "or"
        registers[f"{prefix}.gate"] = gate
        logic = 32
        logic += _compile_predicate(expr.left, registers, f"{prefix}.0")
        logic += _compile_predicate(expr.right, registers,
                                    f"{prefix}.1")
        return logic
    raise KernelUnsupported(
        f"predicate node {type(expr).__name__} has no kernel form")


def _operand_name(expr: Expression) -> str:
    if isinstance(expr, Col):
        return expr.name
    raise KernelUnsupported(
        f"accelerator predicates address columns directly, got {expr!r}")


def _compile_operand(expr: Expression, registers: dict[str, object],
                     prefix: str) -> int:
    if isinstance(expr, Col):
        registers[f"{prefix}.col"] = expr.name
        return 0
    if isinstance(expr, Const):
        registers[f"{prefix}.imm"] = expr.value
        return 0
    if isinstance(expr, Arith):
        registers[f"{prefix}.alu"] = expr.op
        logic = 32
        logic += _compile_operand(expr.left, registers, f"{prefix}.l")
        logic += _compile_operand(expr.right, registers, f"{prefix}.r")
        return logic
    raise KernelUnsupported(
        f"operand {type(expr).__name__} has no kernel form")


# ---------------------------------------------------------------------------
# Operator compilation
# ---------------------------------------------------------------------------

def compile_kernel(op: PhysicalOp) -> Kernel:
    """Compile a physical operator into its accelerator kernel."""
    if isinstance(op, FilterOp):
        registers: dict[str, object] = {"unit": "filter"}
        logic = _compile_predicate(op.predicate, registers)
        return Kernel(op.name, op.kind, registers, logic)
    if isinstance(op, ProjectOp):
        return Kernel(op.name, op.kind,
                      {"unit": "project",
                       "columns": tuple(op.columns)}, 0)
    if isinstance(op, MapOp):
        registers = {"unit": "map", "outputs": tuple(op.exprs)}
        logic = 0
        for index, expr in enumerate(op.exprs.values()):
            logic += 32 + _compile_operand(expr, registers,
                                           f"m{index}")
        return Kernel(op.name, op.kind, registers, logic)
    if isinstance(op, PartitionOp):
        return Kernel(op.name, op.kind,
                      {"unit": "partition", "key": op.key,
                       "fanout": op.n_partitions,
                       "seed": 0x9E3779B1}, 0)
    if isinstance(op, (PartialAggregate, MergeAggregate)):
        state_rows = 0
        if isinstance(op, MergeAggregate) and op.final and op.group_by:
            # A grouped final merge holds state for every group.
            # §4.4: "depending on the size of the result, the same
            # could be done with, e.g., aggregation queries" — so it
            # compiles only under a declared, accelerator-sized bound.
            if op.expected_groups is None:
                raise KernelUnsupported(
                    "grouped final aggregation needs a declared "
                    "expected_groups bound to run off-CPU")
            if op.expected_groups > ACCEL_STATE_ROWS:
                raise KernelUnsupported(
                    f"{op.expected_groups} groups exceed the "
                    f"accelerator state table ({ACCEL_STATE_ROWS})")
            state_rows = op.expected_groups
        registers = {"unit": "aggregate",
                     "group_by": tuple(op.group_by),
                     "aggs": tuple(a.op for a in op.aggs)}
        # Group hashing + state update logic per aggregate, plus the
        # state table for bounded grouped finals.
        logic = 128 + 64 * max(1, len(op.group_by)) + 48 * len(op.aggs)
        logic += 32 * state_rows
        return Kernel(op.name, op.kind, registers, logic)
    if isinstance(op, SortRuns):
        # A per-chunk sorting network: bounded state, installable.
        return Kernel(op.name, op.kind,
                      {"unit": "sort_runs",
                       "keys": tuple(op.keys)},
                      1024 + 128 * len(op.keys))
    if isinstance(op, LimitOp):
        return Kernel(op.name, op.kind,
                      {"unit": "limit", "n": op.n}, 0)
    if isinstance(op, (HashJoinBuild, HashJoinProbe, SortOp,
                       MergeRuns)):
        raise KernelUnsupported(
            f"{type(op).__name__} is stateful and needs an ISA "
            "(run on CPU)")
    # Unknown operators: assume they carry general logic.
    return Kernel(op.name, op.kind, {"unit": "generic"}, 512)


def installation_time(kernel: Kernel) -> float:
    """Seconds to program a device with ``kernel``."""
    return (kernel.register_count * REGISTER_WRITE_TIME
            + kernel.logic_bytes / LOGIC_INSTALL_RATE)


def install_kernel(device: Device, kernel: Kernel):
    """Charge the device for installing ``kernel`` (sim process).

    Installation occupies a device slot (the unit being programmed
    cannot process data meanwhile), mirroring how register files and
    logic banks are reconfigured.
    """
    duration = installation_time(kernel)
    if not device._units.try_acquire():
        yield device._units.request()
    try:
        yield device.sim.timeout(duration)
    finally:
        device._units.release()
    device.trace.add(f"device.{device.name}.kernel_installs", 1)
    device.trace.add(f"device.{device.name}.kernel_install_time",
                     duration)
