"""The push-based data-flow engine — the paper's proposed architecture.

``DataflowEngine.compile`` turns a logical plan plus a
:class:`~repro.engine.placement.Placement` into a
:class:`~repro.flow.stages.StageGraph`: operators become stages pinned
to fabric sites (storage CU, NICs, near-memory accelerator, CPU),
consecutive operators at the same site fuse into one stage, and
credit-controlled channels carry chunks across the fabric between
them.  ``execute`` runs the graph and reports the same
:class:`~repro.engine.results.QueryResult` the Volcano engine does.

Joins compile to a build stage (drained first) and a probe stage that
``depends_on`` it.  With ``placement.partitions > 1`` the join becomes
the scattering pipeline of Figure 4: SmartNIC partition stages fan
both sides out to per-node build/probe stages, and the probe outputs
gather at the result site — the CPU orchestrates nothing.
"""

from __future__ import annotations

from typing import Optional

from ..hardware.presets import HeterogeneousFabric
from ..relational.catalog import Catalog
from ..relational.table import Table
from ..sim import EventKind
from ..flow.ratelimit import RateLimiter
from ..flow.stages import FlowResult, Stage, StageGraph
from .logical import (
    Aggregate,
    Filter,
    Join,
    Limit,
    Map,
    PlanNode,
    Project,
    Query,
    Scan,
    Sort,
)
from .operators import (
    FilterOp,
    HashJoinBuild,
    HashJoinProbe,
    JoinState,
    LimitOp,
    MapOp,
    MergeAggregate,
    MergeRuns,
    PartialAggregate,
    PartitionOp,
    PhysicalOp,
    ProjectOp,
    SortOp,
    SortRuns,
)
from .fusion import fuse_ops, fusion_enabled
from .placement import Placement, pushdown
from .results import QueryResult, TraceSnapshot

__all__ = ["DataflowEngine"]


class _Compiler:
    """One compilation: tracks the graph and fusion state."""

    def __init__(self, engine: "DataflowEngine", graph: StageGraph,
                 placement: Placement):
        self.engine = engine
        self.graph = graph
        self.placement = placement
        self.fabric = engine.fabric
        self.catalog = engine.catalog
        self._counter = 0
        self._fusable: set[str] = set()   # stages safe to append ops to

    def _name(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}{self._counter}"

    # -- fusion-aware stage extension ----------------------------------------

    def extend(self, branches: list[Stage], site: str,
               ops: list[PhysicalOp], hint: str,
               router: str = "single",
               depends_on: tuple = ()) -> list[Stage]:
        """Continue the pipeline at ``site`` with ``ops``.

        Fuses into the tail stage when it sits at the same site and is
        still open; otherwise creates a new stage fed by all branches.
        """
        if (len(branches) == 1 and not depends_on
                and branches[0].name in self._fusable
                and self._site_of(branches[0]) == site
                and branches[0].router == "single"):
            branches[0].ops.extend(ops)
            if router != "single":
                branches[0].router = router
                self._fusable.discard(branches[0].name)
            return branches
        stage = self.graph.stage(self._name(hint), site, ops,
                                 router=router, depends_on=depends_on)
        for branch in branches:
            self.graph.connect(branch, stage,
                               credits=self.engine.default_credits,
                               rate_limiter=self.engine.rate_limiter,
                               cpu_mediator=self.engine.cpu_mediator)
            self._fusable.discard(branch.name)
        if router == "single":
            self._fusable.add(stage.name)
        return [stage]

    def _site_of(self, stage: Stage) -> Optional[str]:
        for site, device in self.fabric.sites.items():
            if device is stage.device:
                return site
        return None

    # -- node compilation ----------------------------------------------------

    def build(self, node: PlanNode) -> list[Stage]:
        if isinstance(node, Scan):
            return self._build_scan(node)
        if isinstance(node, Filter):
            if self.engine.use_zonemaps and isinstance(node.child, Scan):
                branches = self._build_scan(node.child,
                                            predicate=node.predicate)
            else:
                branches = self.build(node.child)
            return self.extend(branches, self.placement.site(node),
                               [FilterOp(node.predicate)], "filter")
        if isinstance(node, Project):
            branches = self.build(node.child)
            return self.extend(branches, self.placement.site(node),
                               [ProjectOp(node.columns)], "project")
        if isinstance(node, Map):
            branches = self.build(node.child)
            return self.extend(
                branches, self.placement.site(node),
                [MapOp(node.exprs, node.output_schema(self.catalog))],
                "map")
        if isinstance(node, Limit):
            branches = self.build(node.child)
            return self.extend(branches, self.placement.site(node),
                               [LimitOp(node.n)], "limit")
        if isinstance(node, Aggregate):
            return self._build_aggregate(node)
        if isinstance(node, Sort):
            branches = self.build(node.child)
            chain = self.placement.chain(node)
            if len(chain) > 1:
                # Pre-sorted runs at the early site, linear merge at
                # the final one (§3.3 pre-sorting pushdown).
                branches = self.extend(branches, chain[0],
                                       [SortRuns(node.keys)],
                                       "sort_runs")
                return self.extend(branches, chain[-1],
                                   [MergeRuns(node.keys)], "merge_runs")
            return self.extend(branches, chain[0],
                               [SortOp(node.keys)], "sort")
        if isinstance(node, Join):
            return self._build_join(node)
        raise TypeError(f"unsupported plan node {node!r}")

    def _build_scan(self, node: Scan, predicate=None) -> list[Stage]:
        table = self.catalog.table(node.table)
        if predicate is not None:
            # Zone-map pruning (§2.1): drop chunks whose bounds refute
            # the predicate before they are ever read off the medium.
            from ..relational.zonemaps import prunable_chunks
            zonemap = self.catalog.zonemap(node.table)
            skip = prunable_chunks(zonemap, predicate)
            if skip:
                kept = [c for i, c in enumerate(table.chunks)
                        if i not in skip]
                table = Table(table.schema, kept, name=table.name)
                self.fabric.trace.add("zonemap.pruned_chunks",
                                      len(skip))
        source = self.graph.source(self._name("scan"), table,
                                   medium=self.fabric.storage.medium)
        branches: list[Stage] = [source]
        if node.columns is not None:
            # Early projection runs at the scan's placed site.
            branches = self.extend(branches, self.placement.site(node),
                                   [ProjectOp(node.columns)],
                                   "scan_project")
        return branches

    def _build_aggregate(self, node: Aggregate) -> list[Stage]:
        branches = self.build(node.child)
        input_schema = node.child.output_schema(self.catalog)
        chain = self.placement.chain(node)
        output_schema = node.output_schema(self.catalog)
        # Partial at the first site.
        branches = self.extend(
            branches, chain[0],
            [PartialAggregate(input_schema, node.group_by, node.aggs)],
            "agg_partial")
        # Merge at the middle sites (the staged group-by of §4.4).
        for site in chain[1:-1]:
            branches = self.extend(
                branches, site,
                [MergeAggregate(input_schema, node.group_by, node.aggs)],
                "agg_merge")
        # Final, stateful merge at the last site.
        return self.extend(
            branches, chain[-1],
            [MergeAggregate(input_schema, node.group_by, node.aggs,
                            final=True, output_schema=output_schema)],
            "agg_final")

    def _build_join(self, node: Join) -> list[Stage]:
        if self.placement.partitions > 1:
            return self._build_partitioned_join(node)
        site = self.placement.site(node)
        state = JoinState()
        build_branches = self.build(node.right)
        build_stage = self.extend(
            build_branches, site, [HashJoinBuild(node.right_key, state)],
            "join_build")[0]
        self._fusable.discard(build_stage.name)
        probe_branches = self.build(node.left)
        probe_op = self._probe_op(node, state)
        return self.extend(probe_branches, site, [probe_op], "join_probe",
                           depends_on=(build_stage.done,))

    def _build_partitioned_join(self, node: Join) -> list[Stage]:
        """Figure 4: NIC-scattered, per-node partitioned hash join."""
        n = self.placement.partitions
        if len(self.fabric.compute) < n:
            raise ValueError(
                f"{n}-way join needs {n} compute nodes, fabric has "
                f"{len(self.fabric.compute)}")
        scatter_site = ("storage.nic" if self.fabric.has_site("storage.nic")
                        else self.placement.site(node))

        build_branches = self.build(node.right)
        build_scatter = self.extend(
            build_branches, scatter_site,
            [PartitionOp(node.right_key, n)], "build_scatter",
            router="partition")[0]
        probe_branches = self.build(node.left)
        probe_scatter = self.extend(
            probe_branches, scatter_site,
            [PartitionOp(node.left_key, n)], "probe_scatter",
            router="partition")[0]

        probe_stages = []
        for i in range(n):
            node_site = self.placement.site(node).replace(
                "compute0", f"compute{i}")
            state = JoinState()
            build_stage = self.graph.stage(
                self._name(f"join_build_n{i}_"), node_site,
                [HashJoinBuild(node.right_key, state)])
            self.graph.connect(build_scatter, build_stage,
                               credits=self.engine.default_credits)
            probe_stage = self.graph.stage(
                self._name(f"join_probe_n{i}_"), node_site,
                [self._probe_op(node, state)],
                depends_on=(build_stage.done,))
            self.graph.connect(probe_scatter, probe_stage,
                               credits=self.engine.default_credits)
            probe_stages.append(probe_stage)
        return probe_stages

    def _probe_op(self, node: Join, state: JoinState) -> HashJoinProbe:
        right_schema = node.right.output_schema(self.catalog)
        rename = {name: node.right_output_name(name, self.catalog)
                  for name in right_schema.names}
        return HashJoinProbe(node.left_key, state,
                             node.output_schema(self.catalog), rename)


class DataflowEngine:
    """Compile-and-run interface for the data-flow architecture."""

    def __init__(self, fabric: HeterogeneousFabric, catalog: Catalog,
                 default_credits: int = 8,
                 rate_limiter: Optional[RateLimiter] = None,
                 cpu_mediated: bool = False,
                 use_zonemaps: bool = False):
        self.fabric = fabric
        self.catalog = catalog
        self.default_credits = default_credits
        self.rate_limiter = rate_limiter
        self.use_zonemaps = use_zonemaps
        # Ablation A2: route every hop through the host CPU instead of
        # letting DMA engines move the data.
        self.cpu_mediator = (fabric.site_device(fabric.cpu_site(0))
                             if cpu_mediated else None)
        self._graph_counter = 0

    def compile(self, plan, placement: Optional[Placement] = None,
                name: str = "", qid: int = 0) -> StageGraph:
        """Build the stage graph for ``plan`` without running it.

        ``qid`` carries the serving query context (0 outside serving)
        into the stage graph, so every event the query's processes
        emit is attributable to its tenant.
        """
        if isinstance(plan, Query):
            plan = plan.plan
        if placement is None:
            placement = pushdown(plan, self.fabric)
        placement.validate(plan, self.fabric)
        self._graph_counter += 1
        graph = StageGraph(self.fabric,
                           name=name or f"df{self._graph_counter}",
                           default_credits=self.default_credits,
                           qid=qid)
        compiler = _Compiler(self, graph, placement)
        branches = compiler.build(plan)
        # Gather at the result site and collect.
        tail = compiler.extend(branches, placement.result_site, [],
                               "gather")
        tail[0].is_sink = True
        if fusion_enabled():
            # Lower each stage's linear filter/project/map runs (and
            # the partial aggregate they feed) into fused operators.
            # Charges are reported per original part, so the stage
            # graph's simulated behavior is bit-identical either way.
            from . import codegen
            context = codegen.fabric_context(self.fabric)
            for stage in graph.stages.values():
                stage.ops = fuse_ops(stage.ops, context)
        return graph

    def execute(self, plan, placement: Optional[Placement] = None,
                name: str = "") -> QueryResult:
        """Compile, run to completion, and package the result."""
        if isinstance(plan, Query):
            plan = plan.plan
        trace = self.fabric.trace
        snapshot = TraceSnapshot(trace)
        started = self.fabric.sim.now
        span = trace.open_span("query.dataflow", started)
        graph = self.compile(plan, placement, name=name)
        trace.emit(started, EventKind.OP_OPEN, "query.dataflow",
                   label=graph.name)
        flow: FlowResult = graph.run()
        trace.close_span(span, self.fabric.sim.now)
        trace.emit(self.fabric.sim.now, EventKind.OP_CLOSE,
                   "query.dataflow", label=graph.name)
        sinks = [s for s in graph.stages.values() if s.is_sink]
        schema = plan.output_schema(self.catalog)
        table = Table(schema)
        for sink in sinks:
            for chunk in sink.collected:
                table.append(chunk)
        trace.add("engine.dataflow.queries", 1)
        trace.add("engine.dataflow.stages", len(graph.stages))
        trace.add("engine.dataflow.rows_out", table.num_rows)
        from . import codegen
        codegen.drain_trace_counters(trace)
        return QueryResult(
            table=table,
            elapsed=flow.elapsed,
            engine="dataflow",
            movement=snapshot.delta_prefix("movement."),
            counters=snapshot.delta_prefix(""),
            utilization=snapshot.utilization_delta(
                flow.elapsed, self.fabric.device_slots()),
            started_at=flow.started_at,
            finished_at=flow.finished_at,
        )
