"""Kernel code generation: fused pipelines lowered to flat source.

The closure-composed :class:`~repro.engine.fusion.FusedOp` already
runs a whole Filter/Project/Map(/PartialAggregate) chain as one
dispatch per morsel, but each chunk still walks a list of step
closures, allocates an intermediate ``Chunk`` per step, and re-derives
constants the pipeline fixed at compile time.  This module removes
that last layer: a fused pipeline is lowered **once** to generated
Python/numpy source — one flat function, predicates inlined, schema
byte-widths folded to literals, charge replay unrolled — compiled per
``(pipeline, schema, fabric)`` fingerprint and cached both in-process
and on disk, so a second process (or a ``bench --jobs N`` worker)
never generates or compiles the same kernel twice.

Bit-identity contract
---------------------
A generated kernel must be indistinguishable from the closure path to
the simulation: it returns the same chunk values and appends the same
``(kind, nbytes)`` charge sequence with the same early-exit semantics
(a part that empties the stream stops the charges exactly where the
unfused executor would).  Byte counts are folded at generation time as
``rows x row_nbytes`` of the schema entering each part — exactly what
``Chunk.nbytes`` reports for dense chunks, selection views, and arena
windows alike.  ``REPRO_NO_CODEGEN=1`` forces the closure reference
path; the regression gate compares both at ``--tolerance 0``.

Cache key derivation
--------------------
``fingerprint = sha256(version | fabric context | fusion flag |
entry schema sig | part descriptors)`` where part descriptors embed
the full predicate/expression reprs (constants included), projection
column lists, map output schemas, and aggregate specs — any change to
what the pipeline computes, the shape of its input, or the fabric it
was planned for produces a different key.  Disk entries live under
``~/.cache/repro-kernels/<fingerprint>.py`` (override with
``REPRO_KERNEL_CACHE_DIR``; empty disables) with a header recording
the fingerprint and a sha256 of the source body; a mismatch on load —
truncation, corruption, version skew — discards the entry and
regenerates.  Writes go through a temp file + ``os.replace`` so
parallel forked workers can race safely.
"""

from __future__ import annotations

import hashlib
import math
import os
import tempfile
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..relational.expressions import (
    And,
    Arith,
    Between,
    Col,
    Compare,
    Const,
    InSet,
    Like,
    Not,
    Or,
)
from ..relational.schema import DataType, Schema
from ..relational.table import Chunk
from .operators import FilterOp, MapOp, PartialAggregate, PhysicalOp, ProjectOp

__all__ = [
    "UnsupportedPipeline",
    "codegen_enabled",
    "fabric_context",
    "fabric_fingerprint",
    "pipeline_fingerprint",
    "generate_source",
    "get_kernel",
    "resolve",
    "cached_source",
    "counters",
    "reset",
    "drain_trace_counters",
    "kernel_cache_dir",
]

#: Bump when generated source semantics change — stale disk entries
#: from an older generator are keyed out, never loaded.
CODEGEN_VERSION = 1

_HEADER_MAGIC = f"# repro-kernel v{CODEGEN_VERSION}"


class UnsupportedPipeline(Exception):
    """The pipeline contains a construct codegen does not lower.

    Raised at generation time; the caller falls back to the composed
    closure path, which supports everything.
    """


def codegen_enabled() -> bool:
    """Whether fused pipelines lower to generated kernels.

    Read at kernel-resolve time (not import time) so tests can flip
    the environment per run — the same contract as ``REPRO_NO_FUSE``
    and ``REPRO_SLOW_KERNEL``.
    """
    return not os.environ.get("REPRO_NO_CODEGEN")


def fabric_fingerprint(fabric) -> str:
    """Hash of the fabric's spec and site map (the placement context).

    A different fabric generation — other sites, other link speeds —
    must not reuse kernels (or, via the serving plan cache which
    shares this primitive, placements) planned for this one.  Lives
    here rather than in :mod:`repro.serve` so the engines' hot path
    never imports the serving stack.
    """
    digest = hashlib.sha256()
    spec = fabric.spec
    for key in sorted(vars(spec)):
        digest.update(f"{key}={vars(spec)[key]!r};".encode())
    for site in sorted(fabric.sites):
        digest.update(f"{site}\x1f".encode())
    return digest.hexdigest()


def fabric_context(fabric) -> str:
    """``fabric_fingerprint`` cached on the fabric object itself."""
    context = getattr(fabric, "_codegen_context", None)
    if context is None:
        context = fabric_fingerprint(fabric)
        fabric._codegen_context = context
    return context


# ---------------------------------------------------------------------------
# Counters (wall-clock observability; never serialized into records)
# ---------------------------------------------------------------------------

_COUNTER_NAMES = ("compiles", "memory_hits", "disk_hits", "disk_writes",
                  "disk_stale", "unsupported", "disabled")
_counters = {name: 0 for name in _COUNTER_NAMES}
_drained = {name: 0 for name in _COUNTER_NAMES}


def counters() -> dict[str, int]:
    """A snapshot of the module's cache counters."""
    return dict(_counters)


def drain_trace_counters(trace) -> None:
    """Publish counter deltas since the last drain as trace counters.

    Engines call this at query end; counters land in the trace's
    ``codegen.*`` namespace (visible to ``--explain``/QueryResult),
    never in bench records or checksums, so cold- and warm-cache runs
    stay byte-identical where the regression gate looks.
    """
    for name in _COUNTER_NAMES:
        delta = _counters[name] - _drained[name]
        if delta:
            trace.add(f"codegen.{name}", delta)
            _drained[name] = _counters[name]


def reset() -> None:
    """Clear the in-memory cache and counters (tests only)."""
    _memory.clear()
    for name in _COUNTER_NAMES:
        _counters[name] = 0
        _drained[name] = 0


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------

def _schema_sig(schema: Schema) -> str:
    return ";".join(f"{f.name}:{f.dtype}:{f.width}"
                    for f in schema.fields)


def _part_descriptor(part: PhysicalOp) -> str:
    if isinstance(part, FilterOp):
        return f"filter[{part.kind}]:{part.predicate!r}"
    if isinstance(part, ProjectOp):
        return f"project:{','.join(part.columns)}"
    if isinstance(part, MapOp):
        exprs = ";".join(f"{name}={expr!r}"
                         for name, expr in part.exprs.items())
        return f"map:{exprs}|{_schema_sig(part.output_schema)}"
    if isinstance(part, PartialAggregate):
        aggs = ";".join(f"{a.op}:{a.column}:{a.alias}" for a in part.aggs)
        return (f"pagg:{','.join(part.group_by)}|{aggs}"
                f"|{_schema_sig(part.state_schema)}")
    raise UnsupportedPipeline(f"cannot lower part {part.name!r}")


def pipeline_fingerprint(parts: Sequence[PhysicalOp], entry_schema: Schema,
                         context: str = "") -> str:
    """The cache key for one fused pipeline against one input shape.

    Covers the generator version, the fabric context, the fusion
    flag, the entry schema (names, dtypes, widths), and the complete
    part descriptors — predicates with their constants, projection
    lists, map expressions and output schemas, aggregate specs.
    """
    from .fusion import fusion_enabled
    digest = hashlib.sha256()
    digest.update(f"repro-codegen/{CODEGEN_VERSION}\x1e".encode())
    digest.update(f"context={context}\x1e".encode())
    digest.update(f"fuse={fusion_enabled()}\x1e".encode())
    digest.update(f"schema={_schema_sig(entry_schema)}\x1e".encode())
    for part in parts:
        digest.update(_part_descriptor(part).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


def schema_chain(parts: Sequence[PhysicalOp],
                 entry_schema: Schema) -> list[Schema]:
    """Schemas at each step boundary: ``chain[i]`` enters part ``i``.

    ``chain[len(parts)]`` is the pipeline's output schema.  The chain
    is derived deterministically from the parts, so a kernel loaded
    from the disk cache binds to the same schemas the generator saw.
    """
    chain = [entry_schema]
    current = entry_schema
    for part in parts:
        if isinstance(part, FilterOp):
            pass
        elif isinstance(part, ProjectOp):
            current = current.project(part.columns)
        elif isinstance(part, MapOp):
            current = part.output_schema
        elif isinstance(part, PartialAggregate):
            current = part.state_schema
        else:
            raise UnsupportedPipeline(f"cannot lower part {part.name!r}")
        chain.append(current)
    return chain


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------

def _literal(value) -> str:
    """A python literal for a constant, or raise UnsupportedPipeline."""
    if isinstance(value, bool) or isinstance(value, (int, str)):
        return repr(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise UnsupportedPipeline(f"non-finite literal {value!r}")
        return repr(value)
    raise UnsupportedPipeline(f"unsupported literal {value!r}")


class _Writer:
    """Indented line accumulator for the generated module."""

    def __init__(self):
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class _KernelGen:
    """Lowers one fused pipeline into a self-contained module body.

    The generated module defines ``make_kernel(Chunk, schemas,
    terminal)`` returning ``kernel(chunk, charges)``; everything the
    hot path touches — column names, dtype byte widths, predicate
    constants, LIKE regexes, charge kinds — is folded into the source
    as literals, so per-chunk execution is straight-line numpy with
    no dispatch, no intermediate chunks, and no tree walks.
    """

    def __init__(self, parts: Sequence[PhysicalOp], entry_schema: Schema):
        self.parts = list(parts)
        self.chain = schema_chain(parts, entry_schema)
        self.w = _Writer()
        self.prelude = _Writer()       # make_kernel-level constants
        self.temp = 0                  # temp-variable counter
        self.like_count = 0
        self.sel_var: Optional[str] = None
        self.rows_var = "n0"
        self.base_var = "base0"
        self.base_names: Optional[list[str]] = None
        self.origin_entry = True       # base still the entry columns
        self.col_cache: dict[str, str] = {}
        self.schema_refs: set[int] = set()

    # -- small helpers -----------------------------------------------------

    def fresh(self, prefix: str = "t") -> str:
        self.temp += 1
        return f"{prefix}{self.temp}"

    def schema_ref(self, index: int) -> str:
        self.schema_refs.add(index)
        return f"s{index}"

    def read_col(self, name: str, schema: Schema) -> str:
        """The variable holding column ``name`` at the current step."""
        if name not in schema:
            raise UnsupportedPipeline(
                f"column {name!r} not in pipeline schema")
        var = self.col_cache.get(name)
        if var is None:
            var = self.fresh("c")
            if self.sel_var is None:
                self.w.emit(f"{var} = {self.base_var}[{name!r}]")
            else:
                self.w.emit(
                    f"{var} = {self.base_var}[{name!r}][{self.sel_var}]")
            self.col_cache[name] = var
        return var

    # -- expression lowering ----------------------------------------------

    _CMP = {"==": "np.equal", "!=": "np.not_equal", "<": "np.less",
            "<=": "np.less_equal", ">": "np.greater",
            ">=": "np.greater_equal"}
    _ARI = {"+": "np.add", "-": "np.subtract", "*": "np.multiply",
            "/": "np.divide"}

    def expr_src(self, expr, schema: Schema) -> str:
        """Lower an expression tree to a source fragment.

        Mirrors ``Expression._compile`` closure-for-closure: Const
        operands of binary ops bind as raw scalars, Between evaluates
        its operand once, LIKE matches dictionary pools when the
        column is encoded.  Statements (column loads, temps) are
        emitted in place; the returned string is the value.
        """
        kind = type(expr)
        if kind is Col:
            return self.read_col(expr.name, schema)
        if kind is Const:
            return f"np.full({self.rows_var}, {_literal(expr.value)})"
        if kind in (Compare, Arith):
            ops = self._CMP if kind is Compare else self._ARI
            fn = ops[expr.op]
            left, right = expr.left, expr.right
            if type(right) is Const and type(left) is not Const:
                return (f"{fn}({self.expr_src(left, schema)}, "
                        f"{_literal(right.value)})")
            if type(left) is Const and type(right) is not Const:
                return (f"{fn}({_literal(left.value)}, "
                        f"{self.expr_src(right, schema)})")
            return (f"{fn}({self.expr_src(left, schema)}, "
                    f"{self.expr_src(right, schema)})")
        if kind is And:
            return (f"np.logical_and({self.expr_src(expr.left, schema)}, "
                    f"{self.expr_src(expr.right, schema)})")
        if kind is Or:
            return (f"np.logical_or({self.expr_src(expr.left, schema)}, "
                    f"{self.expr_src(expr.right, schema)})")
        if kind is Not:
            return f"np.logical_not({self.expr_src(expr.operand, schema)})"
        if kind is Between:
            operand = self.expr_src(expr.operand, schema)
            var = operand
            if not operand.isidentifier():
                var = self.fresh()
                self.w.emit(f"{var} = {operand}")
            if type(expr.low) is Const and type(expr.high) is Const:
                lo = _literal(expr.low.value)
                hi = _literal(expr.high.value)
            else:
                lo = self.expr_src(expr.low, schema)
                hi = self.expr_src(expr.high, schema)
            return (f"np.logical_and(np.greater_equal({var}, {lo}), "
                    f"np.less_equal({var}, {hi}))")
        if kind is InSet:
            values = "[" + ", ".join(_literal(v) for v in expr.values) + "]"
            return f"np.isin({self.expr_src(expr.operand, schema)}, {values})"
        if kind is Like:
            return self.like_src(expr, schema)
        raise UnsupportedPipeline(
            f"unsupported expression node {type(expr).__name__}")

    def like_src(self, expr: Like, schema: Schema) -> str:
        """Lower a LIKE: pool-mask fast path plus row-wise fallback."""
        index = self.like_count
        self.like_count += 1
        matcher = f"_m{index}"
        cache = f"_pm{index}"
        self.prelude.emit(
            f"{matcher} = re.compile({expr._compiled.pattern!r}).match")
        self.prelude.emit(f"{cache} = {{}}")
        out = self.fresh("lk")
        operand = expr.operand
        if (type(operand) is Col and self.origin_entry
                and schema.field(operand.name).dtype == DataType.STRING):
            name = operand.name
            codes = self.fresh("cd")
            self.w.emit(f"{codes} = chunk.dict_codes({name!r})")
            self.w.emit(f"if {codes} is not None:")
            self.w.indent += 1
            pool = self.fresh("pl")
            self.w.emit(f"{pool} = chunk.dict_pool({name!r})")
            self.w.emit(f"_e = {cache}.get(id({pool}))")
            self.w.emit(f"if _e is None or _e[0] is not {pool}:")
            self.w.emit(f"    _pmask = _like_mask({pool}, {matcher})")
            self.w.emit(f"    {cache}[id({pool})] = ({pool}, _pmask)")
            self.w.emit("else:")
            self.w.emit("    _pmask = _e[1]")
            if self.sel_var is None:
                self.w.emit(f"{out} = _pmask[{codes}]")
            else:
                self.w.emit(f"{out} = _pmask[{codes}[{self.sel_var}]]")
            self.w.indent -= 1
            self.w.emit("else:")
            self.w.indent += 1
            # Plain column: match row-wise on the gathered values.
            # The load is not cached — it only exists on this branch.
            if self.sel_var is None:
                src = f"{self.base_var}[{name!r}]"
            else:
                src = f"{self.base_var}[{name!r}][{self.sel_var}]"
            self.w.emit(f"{out} = _like_mask({src}, {matcher})")
            self.w.indent -= 1
            return out
        src = self.expr_src(operand, schema)
        self.w.emit(f"{out} = _like_mask({src}, {matcher})")
        return out

    # -- per-part lowering -------------------------------------------------

    def charge(self, index: int) -> None:
        """Replay part ``index``'s (kind, nbytes) charge (index >= 1)."""
        part = self.parts[index]
        row_nbytes = self.chain[index].row_nbytes
        self.w.emit("if charges is not None:")
        self.w.emit(f"    charges.append(({part.kind!r}, "
                    f"float({self.rows_var} * {row_nbytes})))")

    def lower_filter(self, index: int, part: FilterOp) -> None:
        schema = self.chain[index]
        mask_src = self.expr_src(part.predicate, schema)
        mask = self.fresh("m")
        self.w.emit(f"{mask} = np.asarray({mask_src}, dtype=bool)")
        new_sel = self.fresh("sel")
        if self.sel_var is None:
            self.w.emit(f"{new_sel} = np.flatnonzero({mask})")
        else:
            self.w.emit(f"{new_sel} = {self.sel_var}[{mask}]")
        rows = self.fresh("n")
        self.w.emit(f"{rows} = len({new_sel})")
        self.w.emit(f"if {rows} == 0:")
        self.w.emit("    return None")
        self.sel_var = new_sel
        self.rows_var = rows
        # Cached column vars are in the old row space; re-gather from
        # the base under the composed selection on next read (the same
        # cost the selection-view closure path pays).
        self.col_cache.clear()

    def lower_map(self, index: int, part: MapOp) -> None:
        schema = self.chain[index]
        out_schema = self.chain[index + 1]
        if set(out_schema.names) != set(schema.names) | set(part.exprs):
            raise UnsupportedPipeline("map output schema mismatch")
        mapped: dict[str, str] = {}
        for name, expr in part.exprs.items():
            field = out_schema.field(name)
            if field.dtype != DataType.FLOAT64:
                raise UnsupportedPipeline(
                    f"map output {name!r} is not float64")
            var = self.fresh("mv")
            src = self.expr_src(expr, schema)
            self.w.emit(f"{var} = np.asarray({src}, dtype=np.float64)")
            mapped[name] = var
        for name in schema.names:
            if name not in mapped:
                out_field = out_schema.field(name)
                if out_field != schema.field(name):
                    raise UnsupportedPipeline(
                        f"map changes passthrough column {name!r}")
        entries = []
        cache: dict[str, str] = {}
        for name in out_schema.names:
            var = mapped.get(name)
            if var is None:
                var = self.read_col(name, schema)
            entries.append(f"{name!r}: {var}")
            cache[name] = var
        base = self.fresh("base")
        self.w.emit(f"{base} = {{" + ", ".join(entries) + "}")
        self.base_var = base
        self.base_names = list(out_schema.names)
        self.sel_var = None
        self.origin_entry = False
        self.col_cache = cache

    def current_chunk_src(self, index: int) -> str:
        """Source for the chunk entering step ``index`` as an object."""
        schema = self.chain[index]
        ref = self.schema_ref(index)
        if self.sel_var is not None:
            return f"Chunk._view({ref}, {self.base_var}, {self.sel_var})"
        if self.origin_entry:
            if schema.names == self.chain[0].names:
                return "chunk"
            names = ", ".join(repr(n) for n in schema.names)
            return f"chunk.project([{names}])"
        if schema.names == self.base_names:
            return f"Chunk._from_valid({ref}, {self.base_var})"
        entries = ", ".join(
            f"{n!r}: {self.read_col(n, schema)}" for n in schema.names)
        return f"Chunk._from_valid({ref}, {{{entries}}})"

    def lower_terminal(self, index: int, part: PartialAggregate) -> None:
        cur = self.fresh("cur")
        self.w.emit(f"{cur} = {self.current_chunk_src(index)}")
        self.w.emit(f"emits = terminal.process({cur})")
        self.w.emit("if not emits:")
        self.w.emit("    return None")
        self.w.emit("return emits[0].chunk")

    def lower_output(self) -> None:
        """Emit the stream-final return (no terminal part)."""
        index = len(self.parts)
        self.w.emit(f"return {self.current_chunk_src(index)}")

    # -- assembly ----------------------------------------------------------

    def generate(self) -> str:
        parts = self.parts
        pipeline = " -> ".join(type(p).__name__ for p in parts)
        body = self.w
        body.indent = 1
        body.emit("def kernel(chunk, charges):")
        body.indent = 2
        body.emit("n0 = chunk.num_rows")
        body.emit("if n0 == 0:")
        body.emit("    return None")
        body.emit("base0 = chunk.columns")
        for index, part in enumerate(parts):
            if index:
                self.charge(index)
            if isinstance(part, FilterOp):
                self.lower_filter(index, part)
            elif isinstance(part, ProjectOp):
                pass  # schema-only: tracked in the chain
            elif isinstance(part, MapOp):
                self.lower_map(index, part)
            elif isinstance(part, PartialAggregate):
                if index != len(parts) - 1:
                    raise UnsupportedPipeline(
                        "aggregate must terminate the pipeline")
                self.lower_terminal(index, part)
            else:
                raise UnsupportedPipeline(
                    f"cannot lower part {part.name!r}")
        if not isinstance(parts[-1], PartialAggregate):
            self.lower_output()
        body.indent = 1
        body.emit("return kernel")

        out = _Writer()
        out.emit(f"# pipeline: {pipeline}")
        out.emit("# Generated by repro.engine.codegen - do not edit.")
        out.emit("import re")
        out.emit()
        out.emit("import numpy as np")
        out.emit()
        out.emit()
        out.emit("def _like_mask(values, match):")
        out.emit("    data = values.tolist()")
        out.emit("    return np.fromiter(")
        out.emit("        (match(str(v)) is not None for v in data),")
        out.emit("        dtype=bool, count=len(data))")
        out.emit()
        out.emit()
        out.emit("def make_kernel(Chunk, schemas, terminal):")
        out.indent = 1
        for index in sorted(self.schema_refs):
            out.emit(f"s{index} = schemas[{index}]")
        for line in self.prelude.lines:
            out.emit(line)
        out.indent = 0
        return out.source() + self.w.source()


def generate_source(parts: Sequence[PhysicalOp],
                    entry_schema: Schema) -> str:
    """The generated module body for one pipeline (header excluded)."""
    return _KernelGen(parts, entry_schema).generate()


# ---------------------------------------------------------------------------
# In-memory + on-disk cache
# ---------------------------------------------------------------------------

#: fingerprint -> (body, exec'd module namespace)
_memory: dict[str, tuple[str, dict]] = {}


def kernel_cache_dir() -> Optional[Path]:
    """The persistent kernel directory, or None when disabled."""
    env = os.environ.get("REPRO_KERNEL_CACHE_DIR")
    if env is not None:
        return Path(env) if env else None
    return Path.home() / ".cache" / "repro-kernels"


def _disk_path(fingerprint: str) -> Optional[Path]:
    directory = kernel_cache_dir()
    if directory is None:
        return None
    return directory / f"{fingerprint}.py"


def _body_hash(body: str) -> str:
    return hashlib.sha256(body.encode()).hexdigest()


def _load_disk(fingerprint: str) -> Optional[str]:
    """A verified source body from disk, or None (stale -> discarded)."""
    path = _disk_path(fingerprint)
    if path is None:
        return None
    try:
        text = path.read_text()
    except OSError:
        return None
    lines = text.split("\n", 3)
    stale = True
    if len(lines) == 4 and lines[0] == _HEADER_MAGIC:
        recorded_fp = lines[1].removeprefix("# fingerprint: ")
        recorded_hash = lines[2].removeprefix("# source-sha256: ")
        body = lines[3]
        if recorded_fp == fingerprint and _body_hash(body) == recorded_hash:
            stale = False
    if stale:
        _counters["disk_stale"] += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None
    return body


def _store_disk(fingerprint: str, body: str) -> None:
    """Atomically persist a kernel (safe under forked bench workers)."""
    path = _disk_path(fingerprint)
    if path is None:
        return
    text = "\n".join([
        _HEADER_MAGIC,
        f"# fingerprint: {fingerprint}",
        f"# source-sha256: {_body_hash(body)}",
        body,
    ])
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(temp, path)
        except BaseException:
            try:
                os.unlink(temp)
            except OSError:
                pass
            raise
    except OSError:
        return
    _counters["disk_writes"] += 1


def _exec_body(fingerprint: str, body: str) -> dict:
    namespace: dict = {}
    code = compile(body, f"<repro-kernel {fingerprint[:12]}>", "exec")
    exec(code, namespace)  # noqa: S102 - our own generated source
    return namespace


def get_kernel(parts: Sequence[PhysicalOp], entry_schema: Schema,
               context: str = ""):
    """Resolve (kernel, origin, fingerprint) for one fused pipeline.

    ``origin`` is ``"memory"``, ``"disk"``, or ``"compiled"`` — where
    the source came from.  Raises :class:`UnsupportedPipeline` when
    the pipeline cannot be lowered; callers fall back to closures.
    """
    fingerprint = pipeline_fingerprint(parts, entry_schema, context)
    cached = _memory.get(fingerprint)
    if cached is not None:
        body, namespace = cached
        origin = "memory"
        _counters["memory_hits"] += 1
    else:
        body = _load_disk(fingerprint)
        origin = "disk"
        if body is not None:
            try:
                namespace = _exec_body(fingerprint, body)
            except Exception:
                # Hash-valid but unloadable (e.g. generator skew not
                # covered by the version bump): discard and rebuild.
                _counters["disk_stale"] += 1
                path = _disk_path(fingerprint)
                if path is not None:
                    try:
                        path.unlink()
                    except OSError:
                        pass
                body = None
        if body is None:
            body = generate_source(parts, entry_schema)
            namespace = _exec_body(fingerprint, body)
            origin = "compiled"
            _counters["compiles"] += 1
            _store_disk(fingerprint, body)
        else:
            _counters["disk_hits"] += 1
        _memory[fingerprint] = (body, namespace)
    terminal = parts[-1] if isinstance(parts[-1], PartialAggregate) else None
    schemas = schema_chain(parts, entry_schema)
    kernel = namespace["make_kernel"](Chunk, schemas, terminal)
    return kernel, origin, fingerprint


def resolve(parts: Sequence[PhysicalOp], entry_schema: Schema,
            context: str = ""):
    """Non-raising resolve for executors: (kernel, origin, fingerprint).

    ``kernel`` is None when the pipeline stays on the closure path —
    either codegen is disabled (``origin == "disabled"``) or the
    pipeline contains an unlowerable construct (``origin ==
    "closure"``).  Counters record which.
    """
    if not codegen_enabled():
        _counters["disabled"] += 1
        return None, "disabled", None
    try:
        return get_kernel(parts, entry_schema, context)
    except UnsupportedPipeline:
        _counters["unsupported"] += 1
        return None, "closure", None


def cached_source(fingerprint: str) -> Optional[str]:
    """The cached source body for a fingerprint, if resolved."""
    cached = _memory.get(fingerprint)
    return cached[0] if cached is not None else None
