"""The asyncio front-end: concurrent clients over a virtual clock.

Real serving systems put an async request/reply layer in front of
the engine; this module does the same, with one twist that keeps the
whole reproduction deterministic: *time is the simulator's clock*.
Client populations are ordinary ``asyncio`` coroutines — they
``await`` submissions and responses exactly like network clients
would — but instead of wall-clock sleeps they wait on virtual-time
futures, and a conductor advances the discrete-event simulator only
when every client is blocked.  The interleaving of thousands of
concurrent clients is therefore a pure function of the seeds, which
is what lets CI assert bit-identical checksums and latency
distributions across runs.

The conductor loop:

1. let every runnable client task run until it blocks on a
   front-end future (one event-loop pass — clients only ever block
   on futures this front-end resolves);
2. fire all due work at the current virtual instant (arrivals →
   :meth:`QueryServer.submit`, timer wake-ups) in deterministic
   (time, sequence) order;
3. otherwise advance the simulator event-by-event — stopping as soon
   as a completion resolves a client future, so a woken client can
   schedule new arrivals *before* the clock passes them.
"""

from __future__ import annotations

import asyncio
import heapq
from dataclasses import dataclass
from typing import Awaitable, Callable, Optional

from .server import QueryServer, ServeRecord

__all__ = ["AsyncFrontEnd", "ShedResponse"]


@dataclass(frozen=True)
class ShedResponse:
    """Reply to a shed submission: come back after ``retry_after_s``."""

    record: ServeRecord

    @property
    def retry_after_s(self) -> float:
        return self.record.retry_after_s


class AsyncFrontEnd:
    """Deterministic asyncio request/reply layer over a QueryServer."""

    def __init__(self, server: QueryServer):
        self.server = server
        self.sim = server.fabric.sim
        self._work: list[tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- client-facing API -------------------------------------------------

    @property
    def now(self) -> float:
        """The current virtual (simulated) time."""
        return self.sim.now

    def _future(self) -> asyncio.Future:
        return self._loop.create_future()

    def _at(self, time: float, fire: Callable[[], None]) -> None:
        if time < self.sim.now:
            raise ValueError(
                f"cannot schedule at {time} (now={self.sim.now})")
        self._seq += 1
        heapq.heappush(self._work, (time, self._seq, fire))

    def submit(self, tenant: str, template: str,
               at: Optional[float] = None) -> asyncio.Future:
        """Submit a query at virtual time ``at`` (default: now).

        Returns a future that resolves to the completed
        :class:`ServeRecord`, or to a :class:`ShedResponse` when
        admission control sheds the query.  ``await`` it for
        closed-loop behavior; fire-and-gather for open-loop.
        """
        fut = self._future()

        def fire() -> None:
            def on_done(record: ServeRecord) -> None:
                self.sim.wake()
                if not fut.done():
                    fut.set_result(record if record.admitted
                                   else ShedResponse(record))
            self.server.submit(tenant, template, on_done=on_done)

        self._at(self.sim.now if at is None else at, fire)
        return fut

    async def sleep_until(self, time: float) -> float:
        """Block until virtual time ``time``; returns the new now."""
        fut = self._future()

        def fire() -> None:
            self.sim.wake()
            if not fut.done():
                fut.set_result(None)

        self._at(max(time, self.sim.now), fire)
        await fut
        return self.sim.now

    # -- the conductor -----------------------------------------------------

    async def _quiesce(self) -> None:
        """Let every runnable client task run until it blocks.

        Clients only block on futures this front-end resolves, and
        resolving a future schedules the waiter *ahead* of this
        coroutine's wake-up, so two loop passes are enough for every
        woken client to reach its next ``await`` (the second pass
        covers a client whose first action resolves synchronously).
        """
        await asyncio.sleep(0)
        await asyncio.sleep(0)

    def _fire_due(self) -> bool:
        """Run all work scheduled at the current instant."""
        fired = False
        while self._work and self._work[0][0] <= self.sim.now:
            _time, _seq, fire = heapq.heappop(self._work)
            fire()
            fired = True
        return fired

    def _advance(self) -> None:
        """Move virtual time forward to the next interesting instant.

        Runs the simulator interruptibly so that the moment a
        completion wakes a client (``sim.wake()`` from ``on_done``),
        control returns to the clients before the clock moves past
        their reaction.  ``run_until_wake`` dispatches the same
        events in the same order as the older ``peek``/``step`` loop
        — it just avoids two Python calls per event.
        """
        horizon = self._work[0][0] if self._work else None
        self.sim.run_until_wake(until=horizon)

    async def run(self, populations: list[Awaitable]) -> None:
        """Drive client ``populations`` to completion, then drain.

        The front-end owns the clock: population coroutines must
        block only on :meth:`submit` futures and
        :meth:`sleep_until`.
        """
        self._loop = asyncio.get_running_loop()
        tasks = [asyncio.ensure_future(p) for p in populations]
        try:
            while True:
                await self._quiesce()
                if self._fire_due():
                    # New work landed at this instant (e.g. a shed
                    # response resolved synchronously) — let clients
                    # react before time moves.
                    continue
                done = all(t.done() for t in tasks)
                if done and not self._work \
                        and self.sim.peek_next_time() is None:
                    break
                if not self._work \
                        and self.sim.peek_next_time() is None:
                    # Clients are blocked but nothing is scheduled:
                    # a deadlocked population (await with no pending
                    # stimulus) — fail loudly instead of hanging.
                    raise RuntimeError(
                        "front-end stalled: clients waiting with no "
                        "pending work or simulator events")
                self._advance()
            for task in tasks:
                # Surface client exceptions (they are already done).
                task.result()
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()

    def serve(self, populations: list[Awaitable]) -> None:
        """Synchronous wrapper: ``asyncio.run`` the serving session."""
        asyncio.run(self.run(populations))
