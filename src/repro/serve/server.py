"""The long-lived query server: one warm fabric, many tenants.

:class:`QueryServer` is the simulation-domain core of serving: it
accepts submissions *while the simulator is running* (unlike the
batch :class:`~repro.scheduler.scheduler.Scheduler`), pushes them
through admission control and the per-tenant weighted fair queue,
plans them via the plan cache, and executes admitted queries on the
shared fabric through the interference-aware
:class:`~repro.scheduler.scheduler.QueryExecutor`.

Every query leaves a :class:`ServeRecord`; :meth:`QueryServer.report`
aggregates them into the ``repro.bench/v3`` serving record (latency
percentiles, goodput, shed and SLO-violation counts, per-tenant
breakdowns), and :meth:`QueryServer.accounting_violations`
recomputes every aggregate from the raw records so CI can assert the
bookkeeping is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..analysis.observatory import Observatory
from ..engine.logical import Query
from ..hardware.presets import HeterogeneousFabric
from ..obs import combine_checksums, table_checksum
from ..relational.catalog import Catalog
from ..scheduler.scheduler import QueryExecutor
from ..sim import EventKind
from .admission import AdmissionController
from .fairqueue import WeightedFairQueue
from .plancache import PlanCache
from .telemetry import ServeTelemetry
from .tenants import TenantClass

__all__ = ["QueryServer", "ServeConfig", "ServeRecord",
           "latency_percentile"]


def latency_percentile(latencies: list[float], q: float) -> float:
    """Deterministic nearest-rank percentile (q in (0, 1])."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(1, -(-int(q * 1000) * len(ordered) // 1000))
    rank = min(len(ordered), max(1, rank))
    return ordered[rank - 1]


@dataclass(frozen=True)
class ServeConfig:
    """Server-wide knobs.

    The ``telemetry`` flag gates only the *derived* telemetry
    (windowing, sketches, exemplars, burn-rate alerts) — the serve
    lifecycle events and trace contexts are always recorded, and the
    observer-effect CI gate asserts that flipping the flag changes
    neither checksums nor completion order.
    """

    max_concurrency: int = 4
    max_queue: int = 32
    variants_per_query: int = 3
    policy: str = "interference+ratelimit"
    plan_cache_capacity: int = 256
    checksum_results: bool = True
    telemetry: bool = True
    telemetry_window_s: float = 0.005
    sketch_capacity: int = 256
    exemplars_per_window: int = 2
    max_exemplars: int = 32
    burn_threshold: float = 1.0
    fast_windows: int = 3
    slow_windows: int = 12
    #: The saturation observatory (windowed fabric attribution, bound
    #: classifier, placement regret) — pure observer like telemetry,
    #: gated by its own observer-effect CI leg.
    observatory: bool = True
    observatory_window_s: float = 0.005


@dataclass
class ServeRecord:
    """One query's trip through the server."""

    name: str
    tenant: str
    template: str
    arrival: float
    slo_s: float
    qid: int = 0                  # trace context id (tenant lanes)
    admitted: bool = True
    retry_after_s: float = 0.0
    plan_cache: str = ""          # "hit" | "miss" ("" for shed)
    variant_name: str = ""
    started: float = 0.0
    finished: float = 0.0
    checksum: str = ""
    table: Optional[object] = None

    @property
    def latency(self) -> float:
        return self.finished - self.arrival

    @property
    def queued_s(self) -> float:
        return self.started - self.arrival

    @property
    def completed(self) -> bool:
        return self.admitted and self.finished > 0.0

    @property
    def slo_violated(self) -> bool:
        return self.completed and self.latency > self.slo_s

    def to_dict(self) -> dict:
        return {
            "name": self.name, "tenant": self.tenant,
            "template": self.template, "arrival": self.arrival,
            "qid": self.qid,
            "admitted": self.admitted,
            "retry_after_s": self.retry_after_s,
            "plan_cache": self.plan_cache,
            "variant": self.variant_name,
            "started": self.started, "finished": self.finished,
            "latency_s": self.latency if self.completed else None,
            "slo_s": self.slo_s,
            "slo_violated": self.slo_violated,
            "checksum": self.checksum,
        }


@dataclass
class _Pending:
    record: ServeRecord
    query: Query
    variants: list
    cost_s: float
    on_done: Optional[Callable[[ServeRecord], None]]


class QueryServer:
    """Serves tenant query streams on one shared warm fabric."""

    def __init__(self, fabric: HeterogeneousFabric, catalog: Catalog,
                 tenants: list[TenantClass],
                 templates: dict[str, Callable[[], Query]],
                 config: Optional[ServeConfig] = None):
        self.fabric = fabric
        self.catalog = catalog
        self.config = config or ServeConfig()
        self.tenants = {t.name: t for t in tenants}
        if len(self.tenants) != len(tenants):
            raise ValueError("duplicate tenant names")
        self.templates = dict(templates)
        for tenant in tenants:
            missing = set(tenant.templates) - set(self.templates)
            if missing:
                raise ValueError(
                    f"tenant {tenant.name!r} references unknown "
                    f"templates {sorted(missing)}")
        self.executor = QueryExecutor(
            fabric, catalog, policy=self.config.policy,
            variants_per_query=self.config.variants_per_query)
        self.admission = AdmissionController(
            self.config.max_queue, self.config.max_concurrency)
        self.queue = WeightedFairQueue()
        self.plan_cache = PlanCache(
            capacity=self.config.plan_cache_capacity)
        self.records: list[ServeRecord] = []
        #: Completion order by record name — bit-identical between
        #: telemetry-on and telemetry-off runs (observer-effect gate).
        self.completion_order: list[str] = []
        self.telemetry: Optional[ServeTelemetry] = None
        if self.config.telemetry:
            self.telemetry = ServeTelemetry(
                self.tenants, fabric.trace,
                window_s=self.config.telemetry_window_s,
                sketch_capacity=self.config.sketch_capacity,
                exemplars_per_window=self.config.exemplars_per_window,
                max_exemplars=self.config.max_exemplars,
                burn_threshold=self.config.burn_threshold,
                fast_windows=self.config.fast_windows,
                slow_windows=self.config.slow_windows)
        self.observatory: Optional[Observatory] = None
        if self.config.observatory:
            bandwidth = {
                data["link"].name: data["link"].bandwidth
                for _a, _b, data in fabric.graph.edges(data=True)}
            self.observatory = Observatory(
                self.tenants, fabric.trace,
                window_s=self.config.observatory_window_s,
                link_bandwidth=bandwidth)
        self._running: set[str] = set()
        self._backlog_cost_s = 0.0
        self._seq = 0
        self._first_arrival: Optional[float] = None
        self._last_finish = 0.0

    # -- submission (call at the arrival's simulated time) -----------------

    def submit(self, tenant_name: str, template: str,
               on_done: Optional[Callable[[ServeRecord], None]] = None
               ) -> ServeRecord:
        """Admit-or-shed one query arriving *now* (``sim.now``).

        Returns the record immediately; for admitted queries the
        terminal fields are filled in when execution finishes and
        ``on_done`` (if given) fires.  For shed queries ``on_done``
        fires before this returns, with ``retry_after_s`` set.
        """
        tenant = self.tenants[tenant_name]
        if template not in self.templates:
            raise ValueError(f"unknown template {template!r}")
        sim = self.fabric.sim
        self._seq += 1
        record = ServeRecord(
            name=f"{tenant_name}.{template}#{self._seq}",
            tenant=tenant_name, template=template,
            arrival=sim.now, slo_s=tenant.slo_s)
        self.records.append(record)
        if self._first_arrival is None:
            self._first_arrival = sim.now
        trace = self.fabric.trace
        record.qid = trace.register_context(record.name,
                                            tenant=tenant_name)
        trace.add("serve.submitted", 1)
        trace.add(f"serve.tenant.{tenant_name}.submitted", 1)
        trace.emit(sim.now, EventKind.SERVE_ARRIVE,
                   f"serve.{tenant_name}", label=template,
                   qid=record.qid)
        if self.telemetry is not None:
            self.telemetry.on_arrival(record, len(self.queue))

        decision = self.admission.decide(
            queued=len(self.queue), running=len(self._running),
            backlog_cost_s=self._backlog_cost_s)
        if not decision.admitted:
            record.admitted = False
            record.retry_after_s = decision.retry_after_s
            trace.add("serve.shed", 1)
            trace.add(f"serve.tenant.{tenant_name}.shed", 1)
            trace.emit(sim.now, EventKind.SERVE_SHED,
                       f"serve.{tenant_name}", label=template,
                       qid=record.qid)
            if self.telemetry is not None:
                self.telemetry.on_shed(record)
            if on_done is not None:
                on_done(record)
            return record

        query = self.templates[template]()
        variants = self.plan_cache.lookup(query, self.catalog,
                                          self.fabric)
        if variants is None:
            record.plan_cache = "miss"
            variants = self.executor.plan_variants(query)
            self.plan_cache.store(query, self.catalog, self.fabric,
                                  variants)
        else:
            record.plan_cache = "hit"
        trace.add(f"serve.plan_cache.{record.plan_cache}", 1)

        cost_s = variants[0].cost.bottleneck_time
        pending = _Pending(record, query, variants, cost_s, on_done)
        self.queue.push(tenant_name, tenant.weight, cost_s, pending)
        self._backlog_cost_s += cost_s
        self._dispatch()
        return record

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self) -> None:
        """Start queued queries while execution slots are free."""
        sim = self.fabric.sim
        while (len(self._running) < self.config.max_concurrency
               and len(self.queue)):
            _tenant, pending = self.queue.pop()
            self._backlog_cost_s -= pending.cost_s
            if not len(self.queue):
                self._backlog_cost_s = 0.0  # absorb float drift
            self._running.add(pending.record.name)
            sim.process(self._run(pending),
                        name=f"serve.{pending.record.name}")

    def _run(self, pending: _Pending):
        record = pending.record
        sim = self.fabric.sim
        trace = self.fabric.trace
        trace.emit(sim.now, EventKind.SERVE_START,
                   f"serve.{record.tenant}", label=record.name,
                   qid=record.qid)
        if self.telemetry is not None:
            self.telemetry.on_start(record, len(self.queue), sim.now)
        yield from self.executor.execute(
            record.name, pending.query, pending.variants, record,
            qid=record.qid)
        if self.config.checksum_results:
            record.checksum = table_checksum(record.table)
        self._last_finish = max(self._last_finish, record.finished)
        self._running.discard(record.name)
        self.completion_order.append(record.name)
        trace.add("serve.completed", 1)
        trace.add(f"serve.tenant.{record.tenant}.completed", 1)
        if record.slo_violated:
            trace.add("serve.slo_violations", 1)
        trace.emit(sim.now, EventKind.SERVE_DONE,
                   f"serve.{record.tenant}", label=record.name,
                   dur=record.latency, qid=record.qid)
        if self.telemetry is not None:
            self.telemetry.on_complete(record)
        decision = self.executor.decisions.pop(record.name, None)
        if self.observatory is not None:
            self.observatory.on_complete(record, pending.variants,
                                         decision)
        if pending.on_done is not None:
            pending.on_done(record)
        self._dispatch()

    # -- state -------------------------------------------------------------

    @property
    def idle(self) -> bool:
        """True when nothing is queued or running."""
        return not self._running and not len(self.queue)

    def drain(self) -> None:
        """Run the simulator until the server is idle (batch mode)."""
        self.fabric.run()
        if not self.idle:
            raise RuntimeError(
                f"server not idle after drain: "
                f"{sorted(self._running)} running, "
                f"{len(self.queue)} queued")

    # -- reporting ---------------------------------------------------------

    def metrics(self) -> dict:
        """Aggregate serving metrics over all records so far."""
        completed = [r for r in self.records if r.completed]
        shed = [r for r in self.records if not r.admitted]
        latencies = [r.latency for r in completed]
        violations = sum(1 for r in completed if r.slo_violated)
        makespan = (self._last_finish - self._first_arrival
                    if completed and self._first_arrival is not None
                    else 0.0)
        good = sum(1 for r in completed if not r.slo_violated)
        per_tenant = {}
        for name, tenant in sorted(self.tenants.items()):
            mine = [r for r in self.records if r.tenant == name]
            mine_done = [r for r in mine if r.completed]
            lat = [r.latency for r in mine_done]
            per_tenant[name] = {
                "weight": tenant.weight,
                "slo_s": tenant.slo_s,
                "submitted": len(mine),
                "completed": len(mine_done),
                "shed": sum(1 for r in mine if not r.admitted),
                "slo_violations": sum(1 for r in mine_done
                                      if r.slo_violated),
                "p50_s": latency_percentile(lat, 0.50),
                "p99_s": latency_percentile(lat, 0.99),
                "mean_queued_s": (sum(r.queued_s for r in mine_done)
                                  / len(mine_done) if mine_done
                                  else 0.0),
            }
        return {
            "queries": len(self.records),
            "completed": len(completed),
            "shed": len(shed),
            "slo_violations": violations,
            "latency": {
                "p50_s": latency_percentile(latencies, 0.50),
                "p99_s": latency_percentile(latencies, 0.99),
                "p999_s": latency_percentile(latencies, 0.999),
                "mean_s": (sum(latencies) / len(latencies)
                           if latencies else 0.0),
                "max_s": max(latencies, default=0.0),
            },
            "goodput_qps": good / makespan if makespan > 0 else 0.0,
            "makespan_s": makespan,
            "tenants": per_tenant,
            "plan_cache": self.plan_cache.counters(),
            "admission": self.admission.counters(),
            "queue_max_depth": self.queue.max_depth,
        }

    def report(self, name: str, wall_time_s: float = 0.0) -> dict:
        """The ``repro.bench/v3`` serving record."""
        checksums = {r.name: r.checksum for r in self.records
                     if r.completed and r.checksum}
        record = {
            "name": name,
            "wall_time_s": wall_time_s,
            "sim_time_s": self.fabric.sim.now,
            "checksum": combine_checksums(checksums),
            "records": [r.to_dict() for r in self.records],
            "completion_order": list(self.completion_order),
        }
        record.update(self.metrics())
        if self.telemetry is not None:
            self.telemetry.finalize(self.fabric.sim.now)
            record["telemetry"] = self.telemetry.payload()
            record["telemetry_digest"] = self.telemetry.digest()
        if self.observatory is not None:
            self.observatory.finalize(self.fabric.sim.now)
            record["observatory"] = self.observatory.payload()
            record["observatory_digest"] = self.observatory.digest()
        return record

    def accounting_violations(self) -> list[str]:
        """Recompute every aggregate from raw records; [] = exact.

        The serve-smoke CI job asserts this is empty: percentiles,
        goodput, shed and SLO counts must all be re-derivable from
        the per-query records with zero discrepancy.
        """
        errors: list[str] = []
        metrics = self.metrics()
        completed = [r for r in self.records if r.completed]
        shed = [r for r in self.records if not r.admitted]
        pending = len(self.records) - len(completed) - len(shed)
        if self.idle and pending:
            errors.append(f"{pending} records neither completed nor "
                          "shed on an idle server")
        if metrics["completed"] != len(completed):
            errors.append("completed count mismatch")
        if metrics["shed"] != len(shed) or \
                metrics["shed"] != self.admission.shed:
            errors.append(
                f"shed count mismatch (metrics {metrics['shed']}, "
                f"records {len(shed)}, "
                f"admission {self.admission.shed})")
        if self.admission.admitted != len(self.records) - len(shed):
            errors.append("admission admitted != submitted - shed")
        violations = sum(1 for r in completed if r.slo_violated)
        if metrics["slo_violations"] != violations:
            errors.append("slo violation count mismatch")
        per_tenant_total = sum(t["slo_violations"]
                               for t in metrics["tenants"].values())
        if per_tenant_total != violations:
            errors.append("per-tenant slo violations do not sum to "
                          "the total")
        for r in completed:
            if not (r.arrival <= r.started <= r.finished):
                errors.append(f"{r.name}: arrival/started/finished "
                              "not monotone")
            if r.slo_violated != (r.latency > r.slo_s):
                errors.append(f"{r.name}: slo flag inconsistent")
        latencies = sorted(r.latency for r in completed)
        for key, q in (("p50_s", 0.50), ("p99_s", 0.99),
                       ("p999_s", 0.999)):
            expect = latency_percentile(latencies, q)
            if metrics["latency"][key] != expect:
                errors.append(f"latency {key} mismatch")
        if latencies and metrics["latency"]["max_s"] != latencies[-1]:
            errors.append("latency max mismatch")
        cache = self.plan_cache.counters()
        planned = sum(1 for r in self.records
                      if r.plan_cache in ("hit", "miss"))
        if cache["hits"] + cache["misses"] != planned:
            errors.append("plan cache hits+misses != planned queries")
        finishes = {r.name: r.finished for r in completed}
        if sorted(self.completion_order) != sorted(finishes):
            errors.append("completion order does not cover exactly "
                          "the completed records")
        else:
            seq = [finishes[name] for name in self.completion_order]
            if seq != sorted(seq):
                errors.append("completion order not monotone in "
                              "finish time")
        return errors

    def telemetry_violations(self) -> list[str]:
        """Telemetry invariant check ([] when telemetry is off).

        Finalizes the telemetry if needed and recomputes every
        windowed aggregate, alert, sketch percentile and exemplar
        attribution from the raw records — the serve-smoke CI job
        asserts this is empty.
        """
        if self.telemetry is None:
            return []
        self.telemetry.finalize(self.fabric.sim.now)
        return self.telemetry.telemetry_violations(self.records)

    def observatory_violations(self) -> list[str]:
        """Observatory invariant check ([] when it is off).

        Finalizes the observatory if needed and recomputes every
        window attribution through the scalar reference path, the
        telescoped horizon sum, per-query reconciliation, and the
        bound/regret entries — the serve-smoke CI job asserts this
        is empty.
        """
        if self.observatory is None:
            return []
        self.observatory.finalize(self.fabric.sim.now)
        return self.observatory.observatory_violations(self.records)
