"""Continuous serving telemetry: windows, sketches, exemplars, alerts.

The serving stack answers *whether* the run met its SLOs; this module
answers *when it started going wrong and why* — continuously, as the
virtual clock advances, the way a production serving system's
telemetry pipeline would:

* **Per-tenant tumbling windows.**  Every arrival / shed / start /
  completion is folded into the window ``int(ts / window_s)`` of the
  tenant that caused it.  Windows are *dense*: quiet windows exist
  with zero counts, which is what lets the burn-rate monitor resolve
  alerts during lulls and lets CI replay the alert stream from the
  series alone.
* **Mergeable quantile sketch.**  Per-window latency distributions are
  held in :class:`QuantileSketch` — exact (bit-equal to
  :func:`~repro.serve.server.latency_percentile`) until a window
  exceeds the sketch capacity, after which compression kicks in with a
  *self-documented* accumulated rank-error bound.  Sketches merge, so
  whole-run percentiles come from folding window sketches without
  keeping every latency.
* **Tail exemplars.**  The K worst completions per window keep their
  full per-query event slice (by trace context id) and an exact
  critical-path attribution of ``[arrival, finished]`` against the
  shared fabric — the "what was the fabric doing while my p99 query
  waited" view.  Attribution reuses one
  :func:`~repro.analysis.critical_path.raw_intervals` pass and
  reconciles with the window width exactly (tolerance 0, CI-gated).
* **Burn-rate alerts.**  One
  :class:`~repro.analysis.slo.BurnRateMonitor` per tenant watches the
  dense windows; fired/resolved transitions are emitted into the
  event ring as :attr:`~repro.sim.EventKind.ALERT` events and
  collected for the payload.

Determinism: everything here folds events in simulation order and
iterates tenants/windows in sorted order, so the
``repro.serve-telemetry/v1`` payload — and its digest — is
byte-identical for a given seed regardless of host or ``--jobs``
(each scenario's telemetry is computed inside its own deterministic
run).  Telemetry is pure observation: it never yields, never touches
the simulator, and the observer-effect CI gate asserts checksums and
completion order are bit-identical with telemetry on and off.

A note on clock edges: an alert's timestamp is the *closing edge* of
the window that triggered it, so the final partial window's alerts
may carry a timestamp slightly past the last completion — the window
closes at its nominal boundary, not at the last event.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

from ..analysis.critical_path import (IntervalIndex, attribute,
                                      raw_intervals)
from ..analysis.slo import BurnRateMonitor, SLOPolicy, alert_mismatches
from ..sim import EventKind, Trace

__all__ = ["QuantileSketch", "ServeTelemetry", "TELEMETRY_SCHEMA",
           "nearest_rank"]

TELEMETRY_SCHEMA = "repro.serve-telemetry/v1"


def nearest_rank(total_weight: int, q: float) -> int:
    """The 1-based nearest rank for quantile ``q`` over ``n`` points.

    The same integer formula :func:`~repro.serve.server.
    latency_percentile` uses, so an uncompressed sketch reproduces the
    server's percentiles *bit for bit*.
    """
    if total_weight <= 0:
        return 0
    rank = max(1, -(-int(q * 1000) * total_weight // 1000))
    return min(total_weight, rank)


class QuantileSketch:
    """Deterministic mergeable nearest-rank quantile sketch.

    Holds ``(value, weight)`` points.  While the number of distinct
    points is within ``capacity`` the sketch is *exact*: quantiles use
    the same integer nearest-rank formula as the serving report, so
    they agree bit for bit.  Past capacity, a deterministic
    compression pass groups weight-adjacent points and keeps each
    group's weighted-median value; every such pass adds
    ``ceil(W / capacity)`` to :attr:`rank_error_bound` — the sketch
    carries its own worst-case rank error, and the telemetry
    validation checks observed percentiles against exact ones within
    exactly that bound.

    Merging settles both sides, concatenates, coalesces equal values
    and re-compresses; bounds add.  All operations are pure integer /
    float-comparison arithmetic — no randomness, no hashing — so the
    result is reproducible across hosts.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 2:
            raise ValueError("sketch capacity must be >= 2")
        self.capacity = capacity
        self._points: list[tuple[float, int]] = []  # settled, sorted
        self._buffer: list[float] = []              # unsorted adds
        self.count = 0            # total weight
        self.rank_error_bound = 0  # accumulated worst-case rank error
        self.compactions = 0

    # -- building ----------------------------------------------------------

    def add(self, value: float) -> None:
        self._buffer.append(value)
        self.count += 1
        if len(self._buffer) + len(self._points) > 4 * self.capacity:
            self._settle()

    def _settle(self) -> None:
        """Fold the buffer in: sort, coalesce, compress if needed."""
        if self._buffer:
            merged = self._points + [(v, 1) for v in self._buffer]
            self._buffer = []
            merged.sort(key=lambda p: p[0])
            self._points = _coalesce(merged)
        if len(self._points) > self.capacity:
            self._compress()

    def _compress(self) -> None:
        """Group weight-adjacent points down to ``capacity`` points.

        Deterministic: greedy groups of cumulative weight
        ``ceil(W / capacity)``; each group is represented by its
        weighted-median point with the group's total weight.  Any
        rank query moves by at most the group weight, hence the bound.
        """
        target = -(-self.count // self.capacity)  # ceil
        groups: list[list[tuple[float, int]]] = []
        acc = 0
        for point in self._points:
            if not groups or acc >= target:
                groups.append([])
                acc = 0
            groups[-1].append(point)
            acc += point[1]
        out: list[tuple[float, int]] = []
        for group in groups:
            weight = sum(w for _, w in group)
            mid = (weight + 1) // 2
            running = 0
            value = group[-1][0]
            for v, w in group:
                running += w
                if running >= mid:
                    value = v
                    break
            out.append((value, weight))
        self._points = _coalesce(out)
        self.rank_error_bound += target
        self.compactions += 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` in (returns self)."""
        self._settle()
        other._settle()
        merged = _coalesce(sorted(self._points + other._points,
                                  key=lambda p: p[0]))
        self._points = merged
        self.count += other.count
        self.rank_error_bound += other.rank_error_bound
        self.compactions += other.compactions
        if len(self._points) > self.capacity:
            self._compress()
        return self

    # -- querying ----------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile (bit-exact while uncompressed)."""
        self._settle()
        rank = nearest_rank(self.count, q)
        if rank == 0:
            return 0.0
        running = 0
        for value, weight in self._points:
            running += weight
            if running >= rank:
                return value
        return self._points[-1][0]

    @property
    def exact(self) -> bool:
        """True while no compression has happened (bound is 0)."""
        return self.rank_error_bound == 0

    def to_dict(self) -> dict:
        """Canonical JSON form (settled, sorted, coalesced)."""
        self._settle()
        return {
            "capacity": self.capacity,
            "count": self.count,
            "rank_error_bound": self.rank_error_bound,
            "compactions": self.compactions,
            "points": [[value, weight]
                       for value, weight in self._points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuantileSketch":
        sketch = cls(capacity=int(data["capacity"]))
        sketch._points = [(float(v), int(w))
                          for v, w in data.get("points", [])]
        sketch.count = int(data["count"])
        sketch.rank_error_bound = int(data["rank_error_bound"])
        sketch.compactions = int(data.get("compactions", 0))
        return sketch


def _coalesce(points: list[tuple[float, int]]
              ) -> list[tuple[float, int]]:
    """Sum weights of equal adjacent values (input sorted)."""
    out: list[tuple[float, int]] = []
    for value, weight in points:
        if out and out[-1][0] == value:
            out[-1] = (value, out[-1][1] + weight)
        else:
            out.append((value, weight))
    return out


@dataclass
class _Window:
    """One tenant's counters for one tumbling window."""

    arrivals: int = 0
    sheds: int = 0
    starts: int = 0
    completions: int = 0
    violations: int = 0
    queue_depth_max: int = 0
    latencies: list[float] = field(default_factory=list)
    sketch: Optional[QuantileSketch] = None

    def series_entry(self, index: int) -> dict:
        entry = {
            "window": index,
            "arrivals": self.arrivals,
            "sheds": self.sheds,
            "starts": self.starts,
            "completions": self.completions,
            "violations": self.violations,
            "queue_depth_max": self.queue_depth_max,
        }
        if self.sketch is not None and self.sketch.count:
            entry["p50_s"] = self.sketch.quantile(0.50)
            entry["p99_s"] = self.sketch.quantile(0.99)
        return entry


@dataclass
class _Exemplar:
    """A tail candidate kept until finalize fills in its payload."""

    window: int
    latency: float
    record: object  # ServeRecord (kept untyped: no import cycle)


class ServeTelemetry:
    """Streaming per-tenant serving telemetry for one server run.

    The :class:`~repro.serve.server.QueryServer` calls the ``on_*``
    hooks at the simulated instant each lifecycle event happens; this
    object folds them into dense tumbling windows, drives one
    burn-rate monitor per tenant as windows close, and keeps tail
    candidates.  :meth:`finalize` closes the last partial window and
    builds exemplar payloads; :meth:`payload` / :meth:`digest` produce
    the ``repro.serve-telemetry/v1`` artifact.

    Purely observational: no simulator interaction, ever.
    """

    def __init__(self, tenants: dict[str, "object"], trace: Trace,
                 window_s: float = 0.005, sketch_capacity: int = 256,
                 exemplars_per_window: int = 2,
                 max_exemplars: int = 32,
                 burn_threshold: float = 1.0, fast_windows: int = 3,
                 slow_windows: int = 12):
        if window_s <= 0:
            raise ValueError("telemetry window must be positive")
        self.window_s = window_s
        self.sketch_capacity = sketch_capacity
        self.exemplars_per_window = exemplars_per_window
        self.max_exemplars = max_exemplars
        self.trace = trace
        self.policies: dict[str, SLOPolicy] = {}
        self.monitors: dict[str, BurnRateMonitor] = {}
        #: tenant -> dense list of closed windows (index = position).
        self.closed: dict[str, list[_Window]] = {}
        self._open: dict[str, dict[int, _Window]] = {}
        self._next_window = 0   # first window not yet closed
        self.alerts: list[dict] = []
        self._candidates: list[_Exemplar] = []
        self.exemplars: list[dict] = []
        self._finalized = False
        for name in sorted(tenants):
            tenant = tenants[name]
            self.policies[name] = SLOPolicy(
                target=tenant.slo_target, threshold=burn_threshold,
                fast_windows=fast_windows, slow_windows=slow_windows)
            self.monitors[name] = BurnRateMonitor(self.policies[name])
            self.closed[name] = []
            self._open[name] = {}

    # -- window plumbing ---------------------------------------------------

    def _index(self, ts: float) -> int:
        return int(ts / self.window_s)

    def _window(self, tenant: str, ts: float) -> _Window:
        index = self._index(ts)
        self._close_through(index - 1)
        window = self._open[tenant].get(index)
        if window is None:
            window = _Window(sketch=QuantileSketch(
                self.sketch_capacity))
            self._open[tenant][index] = window
        return window

    def _close_through(self, last: int) -> None:
        """Close windows densely up to and including index ``last``."""
        while self._next_window <= last:
            index = self._next_window
            closing = (index + 1) * self.window_s
            for tenant in sorted(self.monitors):
                window = self._open[tenant].pop(index, None)
                if window is None:
                    window = _Window(sketch=QuantileSketch(
                        self.sketch_capacity))
                self.closed[tenant].append(window)
                alert = self.monitors[tenant].observe(
                    index, window.completions, window.violations,
                    at=closing)
                if alert is not None:
                    alert = {"tenant": tenant, **alert}
                    self.alerts.append(alert)
                    self.trace.emit(
                        closing, EventKind.ALERT, f"slo.{tenant}",
                        label=alert["kind"])
            self._next_window = index + 1

    # -- lifecycle hooks (called by QueryServer at sim time) ---------------

    def on_arrival(self, record, queue_depth: int) -> None:
        window = self._window(record.tenant, record.arrival)
        window.arrivals += 1
        window.queue_depth_max = max(window.queue_depth_max,
                                     queue_depth)

    def on_shed(self, record) -> None:
        window = self._window(record.tenant, record.arrival)
        window.sheds += 1

    def on_start(self, record, queue_depth: int, now: float) -> None:
        # ``now`` is passed explicitly: the executor fills in
        # ``record.started`` only once its process first resumes, and
        # hooks must be fed in nondecreasing time order.
        window = self._window(record.tenant, now)
        window.starts += 1
        window.queue_depth_max = max(window.queue_depth_max,
                                     queue_depth)

    def on_complete(self, record) -> None:
        window = self._window(record.tenant, record.finished)
        window.completions += 1
        if record.slo_violated:
            window.violations += 1
        window.latencies.append(record.latency)
        window.sketch.add(record.latency)
        self._candidates.append(_Exemplar(
            self._index(record.finished), record.latency, record))

    # -- finalize ----------------------------------------------------------

    def finalize(self, now: float) -> None:
        """Close through the window containing ``now``; build exemplars.

        Idempotent per run; call once the server is idle.  The window
        containing ``now`` closes at its *nominal* boundary even if
        partial — see the module docstring on clock edges.
        """
        if self._finalized:
            return
        last = max([self._index(now)]
                   + [i for open_ in self._open.values()
                      for i in open_])
        self._close_through(last)
        self._build_exemplars()
        self._finalized = True

    def _build_exemplars(self) -> None:
        """Top-K worst completions per window, fully attributed."""
        by_window: dict[int, list[_Exemplar]] = {}
        for candidate in self._candidates:
            by_window.setdefault(candidate.window, []).append(
                candidate)
        chosen: list[_Exemplar] = []
        for index in sorted(by_window):
            ranked = sorted(by_window[index],
                            key=lambda c: (-c.latency, c.record.name))
            chosen.extend(ranked[:self.exemplars_per_window])
        if len(chosen) > self.max_exemplars:
            chosen = sorted(chosen,
                            key=lambda c: (-c.latency,
                                           c.record.name))
            chosen = chosen[:self.max_exemplars]
            chosen.sort(key=lambda c: (c.window, -c.latency,
                                       c.record.name))

        # One pass over the ring groups event slices by context id;
        # one raw-interval collection serves every attribution.
        slices: dict[int, list] = {
            c.record.qid: [] for c in chosen if c.record.qid}
        oldest_ts: Optional[float] = None
        for event in self.trace.events:
            if oldest_ts is None:
                oldest_ts = event.ts
            if event.qid in slices:
                slices[event.qid].append(event)
        intervals = IntervalIndex(raw_intervals(self.trace))
        dropped = self.trace.events.dropped

        self.exemplars = []
        for candidate in chosen:
            record = candidate.record
            window = [e for e in slices.get(record.qid, [])
                      if record.arrival <= e.ts <= record.finished]
            complete = (dropped == 0
                        or (oldest_ts is not None
                            and oldest_ts <= record.arrival))
            attribution = attribute(self.trace, record.arrival,
                                    record.finished,
                                    intervals=intervals)
            self.exemplars.append({
                "name": record.name,
                "tenant": record.tenant,
                "template": record.template,
                "window": candidate.window,
                "qid": record.qid,
                "latency_s": record.latency,
                "queued_s": record.queued_s,
                "slo_s": record.slo_s,
                "violated": record.slo_violated,
                "slice_complete": complete,
                "events": [e.to_dict() for e in window],
                "attribution": attribution.to_dict(),
            })

    # -- artifacts ---------------------------------------------------------

    def payload(self) -> dict:
        """The canonical ``repro.serve-telemetry/v1`` document."""
        if not self._finalized:
            raise RuntimeError("finalize() the telemetry first")
        tenants = {}
        for name in sorted(self.closed):
            windows = self.closed[name]
            merged = QuantileSketch(self.sketch_capacity)
            for window in windows:
                if window.sketch is not None:
                    merged.merge(window.sketch)
            policy = self.policies[name]
            tenants[name] = {
                "policy": {
                    "target": policy.target,
                    "threshold": policy.threshold,
                    "fast_windows": policy.fast_windows,
                    "slow_windows": policy.slow_windows,
                },
                "series": [w.series_entry(i)
                           for i, w in enumerate(windows)],
                "sketch": merged.to_dict(),
                "p50_s": merged.quantile(0.50),
                "p99_s": merged.quantile(0.99),
                "burning": self.monitors[name].burning,
            }
        return {
            "schema": TELEMETRY_SCHEMA,
            "window_s": self.window_s,
            "windows": self._next_window,
            "tenants": tenants,
            "alerts": list(self.alerts),
            "exemplars": list(self.exemplars),
        }

    def digest(self) -> str:
        """SHA-256 over the canonical JSON payload (bit-reproducible)."""
        canon = json.dumps(self.payload(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()

    # -- self-validation ---------------------------------------------------

    def telemetry_violations(self, records: list) -> list[str]:
        """Every telemetry invariant, recomputed from scratch.

        [] = exact.  Checks (all CI-gated via serve-smoke):

        * per-tenant series sums equal the record-derived counts;
        * every alert is reconstructible from the windowed series
          (and no replayed alert is missing from the live stream);
        * sketch percentiles match exact nearest-rank percentiles
          within each sketch's own ``rank_error_bound`` (bit-equal
          when the bound is 0);
        * every exemplar's critical-path attribution reconciles
          exactly (tolerance 0) and its latency matches its record.
        """
        errors: list[str] = []
        if not self._finalized:
            return ["telemetry never finalized"]
        by_tenant: dict[str, list] = {t: [] for t in self.closed}
        for record in records:
            by_tenant.setdefault(record.tenant, []).append(record)
        for tenant in sorted(self.closed):
            windows = self.closed[tenant]
            mine = by_tenant.get(tenant, [])
            done = [r for r in mine if r.completed]
            sums = {
                "arrivals": sum(w.arrivals for w in windows),
                "sheds": sum(w.sheds for w in windows),
                "completions": sum(w.completions for w in windows),
                "violations": sum(w.violations for w in windows),
            }
            expect = {
                "arrivals": len(mine),
                "sheds": sum(1 for r in mine if not r.admitted),
                "completions": len(done),
                "violations": sum(1 for r in done
                                  if r.slo_violated),
            }
            for key in sums:
                if sums[key] != expect[key]:
                    errors.append(
                        f"{tenant}: windowed {key} sum to "
                        f"{sums[key]}, records say {expect[key]}")
            # Sketch vs exact nearest-rank, per window and merged.
            merged = QuantileSketch(self.sketch_capacity)
            all_latencies: list[float] = []
            for i, window in enumerate(windows):
                if window.sketch is None or not window.sketch.count:
                    continue
                merged.merge(window.sketch)
                all_latencies.extend(window.latencies)
                errors.extend(self._sketch_errors(
                    f"{tenant} window {i}", window.sketch,
                    window.latencies))
            if merged.count:
                errors.extend(self._sketch_errors(
                    f"{tenant} merged", merged, all_latencies))
        series = {t: [w.series_entry(i)
                      for i, w in enumerate(ws)]
                  for t, ws in self.closed.items()}
        errors.extend(alert_mismatches(series, self.policies,
                                       self.alerts, self.window_s))
        for exemplar in self.exemplars:
            label = exemplar["name"]
            if not exemplar["attribution"]["exact"]:
                errors.append(f"exemplar {label}: attribution does "
                              "not reconcile exactly")
            width = (exemplar["attribution"]["finished_at"]
                     - exemplar["attribution"]["started_at"])
            if width != exemplar["latency_s"]:
                errors.append(f"exemplar {label}: attribution window "
                              "!= latency")
        return errors

    @staticmethod
    def _sketch_errors(label: str, sketch: QuantileSketch,
                       latencies: list[float]) -> list[str]:
        """Compare sketch quantiles against exact nearest-rank ones."""
        errors: list[str] = []
        ordered = sorted(latencies)
        if sketch.count != len(ordered):
            return [f"{label}: sketch count {sketch.count} != "
                    f"{len(ordered)} latencies"]
        for q in (0.50, 0.99):
            got = sketch.quantile(q)
            rank = nearest_rank(len(ordered), q)
            exact = ordered[rank - 1]
            if sketch.exact:
                if got != exact:
                    errors.append(
                        f"{label}: p{int(q * 100)} sketch {got!r} != "
                        f"exact {exact!r} with zero error bound")
                continue
            lo = max(0, rank - 1 - sketch.rank_error_bound)
            hi = min(len(ordered) - 1,
                     rank - 1 + sketch.rank_error_bound)
            if not (ordered[lo] <= got <= ordered[hi]):
                errors.append(
                    f"{label}: p{int(q * 100)} sketch {got!r} outside "
                    f"rank-error bound ±{sketch.rank_error_bound} "
                    f"([{ordered[lo]!r}, {ordered[hi]!r}])")
        return errors
