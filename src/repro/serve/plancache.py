"""The plan cache: repeat queries skip optimization entirely.

Optimization (placement enumeration + costing) dominates the
server-side CPU cost of a small query, and serving workloads repeat
the same templates thousands of times.  The cache is keyed on the
*logical query fingerprint* plus the *context fingerprint* (schema +
statistics of the referenced tables, and the fabric's shape) so a
schema change, a data change, or a different fabric invalidates
stale entries instead of silently replaying a wrong placement.

Placements are stored in a plan-instance-independent form: node ids
are rebased onto the plan's deterministic walk order, so a cached
entry re-binds onto the *fresh* plan object each submission builds
(fresh plans keep node ids unique across concurrent queries).  A hit
therefore yields placements and costs bit-identical to what the
optimizer would have produced — cached and uncached runs simulate
identically, which the tests pin.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from ..engine.codegen import fabric_context, fabric_fingerprint
from ..engine.logical import PlanNode, Query, Scan
from ..engine.placement import Placement
from ..optimizer.optimizer import RankedPlacement

__all__ = ["PlanCache", "plan_fingerprint", "schema_fingerprint",
           "fabric_fingerprint"]


def _plan_of(plan) -> PlanNode:
    return plan.plan if isinstance(plan, Query) else plan


def plan_fingerprint(plan) -> str:
    """Structural hash of a logical plan (node-id independent).

    Two plans built from the same template produce the same
    fingerprint even though their node ids differ; any change to an
    operator, predicate, column list, or tree shape changes it.
    The digest is cached on the root node: logical trees are
    immutable once built (the cache already relies on lookup-time
    and store-time fingerprints agreeing), and serving templates
    reuse one plan object across every query.
    """
    root = _plan_of(plan)
    cached = root.__dict__.get("_fingerprint")
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for node in root.walk():
        digest.update(type(node).__name__.encode())
        digest.update(b"\x1f")
        digest.update(node.describe().encode())
        digest.update(f"\x1e{len(node.children)}\x1d".encode())
    fingerprint = digest.hexdigest()
    root._fingerprint = fingerprint
    return fingerprint


def referenced_tables(plan) -> list[str]:
    """The base tables a plan scans, sorted."""
    return sorted({node.table for node in _plan_of(plan).walk()
                   if isinstance(node, Scan)})


def schema_fingerprint(catalog, tables: list[str]) -> str:
    """Hash of the schemas + statistics of the referenced tables.

    Covers field names, dtypes, widths, row counts, and byte counts —
    the inputs the optimizer's cost model actually reads — so
    re-registering a table with different data or shape invalidates
    dependent cache entries.
    """
    digest = hashlib.sha256()
    for name in tables:
        schema = catalog.schema(name)
        stats = catalog.stats(name)
        digest.update(name.encode())
        for f in schema.fields:
            digest.update(
                f"|{f.name}:{f.dtype}:{f.width}".encode())
        digest.update(f"#{stats.rows}:{stats.nbytes}\x1e".encode())
    return digest.hexdigest()


@dataclass
class _CachedVariant:
    """One placement in walk-order (instance-independent) form."""

    chains: list[list[str]]
    result_site: str
    partitions: int
    name: str
    cost: object  # PlanCost — plan-instance independent


@dataclass
class _CacheEntry:
    context: str
    variants: list[_CachedVariant]
    hits: int = 0


def _detach(plan: PlanNode,
            ranked: list[RankedPlacement]) -> list[_CachedVariant]:
    """Rebase placements from node ids onto walk order."""
    order = {node.node_id: i for i, node in enumerate(plan.walk())}
    variants = []
    for candidate in ranked:
        chains: list[Optional[list[str]]] = [None] * len(order)
        for node_id, chain in candidate.placement.sites.items():
            index = order.get(node_id)
            if index is None:
                raise ValueError(
                    "placement does not bind to this plan instance; "
                    "store() must receive the same plan object the "
                    "variants were planned for")
            chains[index] = list(chain)
        variants.append(_CachedVariant(
            chains=chains,
            result_site=candidate.placement.result_site,
            partitions=candidate.placement.partitions,
            name=candidate.placement.name,
            cost=candidate.cost))
    return variants


def _rebind(plan: PlanNode,
            variants: list[_CachedVariant]) -> list[RankedPlacement]:
    """Bind cached placements onto a fresh plan instance."""
    nodes = list(plan.walk())
    ranked = []
    for variant in variants:
        if len(variant.chains) != len(nodes):
            raise ValueError("cached placement does not match plan "
                             "shape")
        sites = {nodes[i].node_id: list(chain)
                 for i, chain in enumerate(variant.chains)
                 if chain is not None}
        ranked.append(RankedPlacement(
            Placement(sites=sites, result_site=variant.result_site,
                      partitions=variant.partitions,
                      name=variant.name),
            variant.cost))
    return ranked


@dataclass
class PlanCache:
    """Variant sets keyed on (query, schema, placement context)."""

    capacity: int = 256
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    _entries: dict[str, _CacheEntry] = field(default_factory=dict)
    #: Memoized context keys: (catalog id+version, tables, fabric id)
    #: -> digest.  Serving recomputes the same context per query;
    #: the catalog version bump keeps invalidation semantics intact.
    _context_memo: dict = field(default_factory=dict, repr=False)

    def context_key(self, catalog, fabric, plan) -> str:
        tables = tuple(referenced_tables(plan))
        memo_key = (id(catalog), catalog.version, tables, id(fabric))
        cached = self._context_memo.get(memo_key)
        if cached is not None:
            return cached
        context = (schema_fingerprint(catalog, list(tables))
                   + ":" + fabric_context(fabric))
        if len(self._context_memo) >= 64:
            self._context_memo.clear()
        self._context_memo[memo_key] = context
        return context

    def lookup(self, plan, catalog, fabric
               ) -> Optional[list[RankedPlacement]]:
        """Cached variants re-bound to ``plan``, or None on miss.

        An entry planned under a different schema or fabric context
        is *invalidated* (dropped and counted) rather than returned.
        """
        plan = _plan_of(plan)
        key = plan_fingerprint(plan)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.context != self.context_key(catalog, fabric, plan):
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        entry.hits += 1
        self.hits += 1
        return _rebind(plan, entry.variants)

    def store(self, plan, catalog, fabric,
              ranked: list[RankedPlacement]) -> None:
        plan = _plan_of(plan)
        key = plan_fingerprint(plan)
        if len(self._entries) >= self.capacity \
                and key not in self._entries:
            # Evict the least-hit (then oldest) entry.
            victim = min(self._entries,
                         key=lambda k: (self._entries[k].hits, k))
            del self._entries[victim]
        self._entries[key] = _CacheEntry(
            context=self.context_key(catalog, fabric, plan),
            variants=_detach(plan, ranked))

    def invalidate_all(self) -> None:
        self.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "invalidations": self.invalidations,
                "entries": len(self._entries)}
