"""Load generation: deterministic arrival schedules per tenant.

Open arrival processes (poisson / bursty / diurnal) are fully
determined by their seed, so they can be materialized up front as an
:class:`Arrival` schedule — ``repro loadgen`` writes exactly that as
JSON, and the serving front-end replays it.  Closed populations
cannot be pre-materialized (each client's next arrival depends on
its previous completion), so they run live as front-end client tasks
instead; :func:`schedule_for` covers the open tenants only.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from ..scheduler.workloads import bursty_arrivals, diurnal_arrivals, \
    poisson_arrivals
from .tenants import TenantClass

__all__ = ["Arrival", "open_arrivals", "schedule_for"]


@dataclass(frozen=True)
class Arrival:
    """One scheduled query arrival (simulated seconds)."""

    time: float
    tenant: str
    template: str
    seq: int

    def to_dict(self) -> dict:
        return asdict(self)


def open_arrivals(tenant: TenantClass, n: int) -> list[Arrival]:
    """``n`` arrivals for one open-process tenant (seeded)."""
    spec = tenant.arrival
    if not spec.is_open:
        raise ValueError(
            f"tenant {tenant.name!r} is closed-loop; its arrivals "
            "depend on completions and cannot be pre-materialized")
    if spec.kind == "poisson":
        times = poisson_arrivals(n, spec.rate, seed=tenant.seed)
    elif spec.kind == "bursty":
        times = bursty_arrivals(n, rate_on=spec.rate,
                                rate_off=spec.rate_off,
                                mean_on=spec.mean_on,
                                mean_off=spec.mean_off,
                                seed=tenant.seed)
    else:  # diurnal
        times = diurnal_arrivals(n, base_rate=spec.rate,
                                 amplitude=spec.amplitude,
                                 period=spec.period,
                                 seed=tenant.seed)
    picks = tenant.draw_templates(n)
    return [Arrival(time=t, tenant=tenant.name, template=template,
                    seq=i)
            for i, (t, template) in enumerate(zip(times, picks))]


def schedule_for(tenants: list[TenantClass],
                 counts: dict[str, int]) -> list[Arrival]:
    """The merged open-tenant schedule, sorted by (time, tenant, seq).

    Closed tenants are skipped (they run live); the sort is total, so
    the replay order — and therefore the whole serving run — is
    deterministic.
    """
    merged: list[Arrival] = []
    for tenant in tenants:
        if tenant.arrival.is_open:
            merged.extend(open_arrivals(tenant,
                                        counts[tenant.name]))
    merged.sort(key=lambda a: (a.time, a.tenant, a.seq))
    return merged
