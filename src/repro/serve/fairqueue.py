"""Per-tenant weighted fair queueing (start-time fair queueing).

The server cannot let one chatty tenant starve the others, so the
waiting room between admission and execution is a start-time fair
queue (SFQ, Goyal et al.): each request is stamped with a virtual
*start* tag ``S = max(V, F_tenant)`` and a *finish* tag ``F = S +
cost / weight`` where ``V`` is the queue's virtual time (the start
tag of the request in service) and ``F_tenant`` the tenant's previous
finish tag.  Serving the smallest finish tag gives each backlogged
tenant throughput proportional to its weight, and a tenant that goes
idle re-enters at the current virtual time instead of banking credit.

Everything is deterministic: ties break on a monotone sequence
number, and the tags are plain floats derived from the (simulated)
cost estimates, so the same submission sequence always drains in the
same order.
"""

from __future__ import annotations

import heapq
from typing import Any, Optional

__all__ = ["WeightedFairQueue"]


class WeightedFairQueue:
    """SFQ over tenant classes; min finish-tag first, FIFO per tenant."""

    def __init__(self):
        self._virtual = 0.0
        self._finish: dict[str, float] = {}
        self._heap: list[tuple[float, int, str, float, Any]] = []
        self._seq = 0
        self._depth: dict[str, int] = {}
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def virtual_time(self) -> float:
        return self._virtual

    def depth(self, tenant: Optional[str] = None) -> int:
        """Queued requests, total or for one tenant."""
        if tenant is None:
            return len(self._heap)
        return self._depth.get(tenant, 0)

    def push(self, tenant: str, weight: float, cost: float,
             item: Any) -> float:
        """Enqueue ``item`` with service ``cost``; returns its finish tag."""
        if weight <= 0:
            raise ValueError("weight must be positive")
        if cost < 0:
            raise ValueError("cost must be non-negative")
        start = max(self._virtual, self._finish.get(tenant, 0.0))
        finish = start + cost / weight
        self._finish[tenant] = finish
        self._seq += 1
        heapq.heappush(self._heap,
                       (finish, self._seq, tenant, start, item))
        self._depth[tenant] = self._depth.get(tenant, 0) + 1
        self.max_depth = max(self.max_depth, len(self._heap))
        return finish

    def pop(self) -> tuple[str, Any]:
        """Dequeue the request with the smallest finish tag.

        Virtual time advances to the start tag of the request
        entering service (SFQ's definition of ``v(t)``), which is
        what bounds how far ahead a backlogged tenant can run and
        lets an idle tenant re-enter without accumulated credit.
        """
        if not self._heap:
            raise IndexError("pop from empty fair queue")
        _finish, _seq, tenant, start, item = heapq.heappop(self._heap)
        self._virtual = max(self._virtual, start)
        self._depth[tenant] -= 1
        if not self._depth[tenant]:
            del self._depth[tenant]
        return tenant, item

    def tenants_waiting(self) -> list[str]:
        return sorted(self._depth)
