"""Self-contained HTML serving dashboard (``repro serve --report``).

Renders one serving record (with its ``repro.serve-telemetry/v1``
section) into a single HTML file with zero external fetches — inline
CSS, inline SVG sparklines, no scripts, no fonts — so the file works
as a CI artifact viewed offline.  The machine-readable telemetry JSON
is written alongside the HTML for ``repro bench --serve --compare``
and the serve-smoke gates.

Layout: a header strip of whole-run aggregates, one section per
tenant (SLO policy, per-window sparklines of arrivals / completions /
sheds / violations / queue depth, sketch percentiles, burn state),
the alert log, and the tail-exemplar table with per-exemplar
critical-path attribution bars.
"""

from __future__ import annotations

import html
import json
import os

from .telemetry import TELEMETRY_SCHEMA

__all__ = ["render_dashboard", "write_dashboard"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1c2733;
       background: #fafbfc; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #d0d7de;
     padding-bottom: .4rem; }
h2 { font-size: 1.2rem; margin-top: 2.2rem; }
h3 { font-size: 1rem; color: #57606a; }
table { border-collapse: collapse; margin: .6rem 0 1.2rem;
        font-size: .85rem; }
th, td { border: 1px solid #d0d7de; padding: .3rem .6rem;
         text-align: right; }
th { background: #eef1f4; }
td.name, th.name { text-align: left; font-family: ui-monospace,
                   'SF Mono', Menlo, monospace; }
.bar { display: inline-block; height: .7rem; background: #4078c0;
       vertical-align: middle; margin-right: .4rem; }
.bar.wait { background: #d1242f; }
.badge { display: inline-block; padding: .1rem .45rem;
         border-radius: .6rem; font-size: .75rem; color: #fff; }
.badge.ok { background: #1a7f37; }
.badge.bad { background: #d1242f; }
.badge.off { background: #9a6700; }
.meta { color: #57606a; font-size: .85rem; }
.spark { vertical-align: middle; background: #fff;
         border: 1px solid #d0d7de; }
.kpi { display: inline-block; margin-right: 1.6rem; }
.kpi b { font-size: 1.15rem; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _badge(ok: bool, yes: str, no: str) -> str:
    cls, text = ("ok", yes) if ok else ("bad", no)
    return f'<span class="badge {cls}">{_esc(text)}</span>'


def _sparkline(values: list[float], color: str = "#4078c0",
               height: int = 28) -> str:
    """An inline SVG sparkline over per-window values."""
    n = len(values)
    if not n:
        return '<span class="meta">no windows</span>'
    width = max(40, min(480, 6 * n))
    top = max(values)
    if top <= 0:
        top = 1.0
    step = width / n
    points = []
    for i, value in enumerate(values):
        x = (i + 0.5) * step
        y = height - 2 - (height - 4) * (value / top)
        points.append(f"{x:.1f},{y:.1f}")
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
        f'points="{" ".join(points)}"/></svg> '
        f'<span class="meta">max {top:g}</span>')


def _kpis(record: dict) -> str:
    latency = record.get("latency", {})
    items = [
        ("queries", f"{record.get('queries', 0):,}"),
        ("completed", f"{record.get('completed', 0):,}"),
        ("shed", f"{record.get('shed', 0):,}"),
        ("SLO violations", f"{record.get('slo_violations', 0):,}"),
        ("p50", f"{latency.get('p50_s', 0.0) * 1e3:.3f} ms"),
        ("p99", f"{latency.get('p99_s', 0.0) * 1e3:.3f} ms"),
        ("goodput", f"{record.get('goodput_qps', 0.0):,.0f} q/s"),
    ]
    return "<p>" + "".join(
        f'<span class="kpi">{_esc(label)}<br><b>{_esc(value)}</b>'
        "</span>" for label, value in items) + "</p>"


_SERIES_ROWS = (
    ("arrivals", "arrivals", "#4078c0"),
    ("completions", "completions", "#1a7f37"),
    ("sheds", "sheds", "#9a6700"),
    ("violations", "SLO violations", "#d1242f"),
    ("queue_depth_max", "queue depth (max)", "#57606a"),
)


def _tenant_section(name: str, data: dict) -> list[str]:
    policy = data.get("policy", {})
    series = data.get("series", [])
    sketch = data.get("sketch", {})
    out = [f"<h2>tenant <code>{_esc(name)}</code> "
           + _badge(not data.get("burning", False),
                    "within budget", "BURNING")
           + "</h2>"]
    out.append(
        "<p class=meta>"
        f"SLO target {policy.get('target', 0.0):.4g} &middot; "
        f"burn threshold &ge;{policy.get('threshold', 0.0):g} "
        f"(fast {policy.get('fast_windows', 0)}w / slow "
        f"{policy.get('slow_windows', 0)}w) &middot; "
        f"p50 {data.get('p50_s', 0.0) * 1e3:.3f} ms &middot; "
        f"p99 {data.get('p99_s', 0.0) * 1e3:.3f} ms &middot; "
        f"sketch {sketch.get('count', 0)} points, rank error "
        f"&le;{sketch.get('rank_error_bound', 0)}</p>")
    out.append("<table>")
    for key, label, color in _SERIES_ROWS:
        values = [float(entry.get(key, 0)) for entry in series]
        out.append(f"<tr><td class=name>{_esc(label)}</td>"
                   f"<td>{sum(values):g}</td>"
                   f"<td style='text-align:left'>"
                   f"{_sparkline(values, color)}</td></tr>")
    out.append("</table>")
    return out


def _alerts_section(alerts: list[dict], window_s: float) -> list[str]:
    out = ["<h2>burn-rate alerts</h2>"]
    if not alerts:
        out.append("<p class=meta>no alerts fired — every tenant "
                   "stayed within its error budget</p>")
        return out
    out.append("<table><tr><th class=name>tenant</th><th>window</th>"
               "<th>at (s)</th><th class=name>kind</th>"
               "<th>fast burn</th><th>slow burn</th>"
               "<th>threshold</th></tr>")
    for alert in alerts:
        fired = alert.get("kind") == "fired"
        out.append(
            f"<tr><td class=name>{_esc(alert.get('tenant'))}</td>"
            f"<td>{alert.get('window', 0)}</td>"
            f"<td>{alert.get('ts', 0.0):.6f}</td>"
            f"<td class=name>"
            + _badge(not fired, alert.get("kind", ""),
                     alert.get("kind", ""))
            + f"</td><td>{alert.get('fast_burn', 0.0):.2f}</td>"
            f"<td>{alert.get('slow_burn', 0.0):.2f}</td>"
            f"<td>{alert.get('threshold', 0.0):g}</td></tr>")
    out.append("</table>")
    out.append(f"<p class=meta>windows are {window_s * 1e3:g} ms of "
               "virtual time; an alert's timestamp is the closing "
               "edge of the window that triggered it</p>")
    return out


def _attribution_bars(attribution: dict) -> str:
    elapsed = attribution.get("elapsed_s", 0.0) or 1.0
    parts = []
    for bucket, seconds in list(
            attribution.get("buckets", {}).items())[:4]:
        share = seconds / elapsed
        wait = " wait" if bucket.startswith("wait:") else ""
        width = max(1, round(share * 120))
        parts.append(
            f'<span class="bar{wait}" style="width:{width}px" '
            f'title="{_esc(bucket)}"></span>'
            f"{_esc(bucket)} {share * 100:.0f}%")
    return "<br>".join(parts)


def _exemplars_section(exemplars: list[dict]) -> list[str]:
    out = ["<h2>tail exemplars</h2>"]
    if not exemplars:
        out.append("<p class=meta>no completions — nothing to "
                   "exemplify</p>")
        return out
    out.append(
        "<table><tr><th class=name>query</th><th>window</th>"
        "<th>latency (ms)</th><th>queued (ms)</th><th>SLO</th>"
        "<th>events</th><th class=name>critical path</th></tr>")
    for exemplar in exemplars:
        attribution = exemplar.get("attribution", {})
        out.append(
            f"<tr><td class=name>{_esc(exemplar.get('name'))}</td>"
            f"<td>{exemplar.get('window', 0)}</td>"
            f"<td>{exemplar.get('latency_s', 0.0) * 1e3:.3f}</td>"
            f"<td>{exemplar.get('queued_s', 0.0) * 1e3:.3f}</td>"
            "<td>"
            + _badge(not exemplar.get("violated", False), "met",
                     "violated")
            + "</td>"
            f"<td>{len(exemplar.get('events', []))}"
            + ("" if exemplar.get("slice_complete", True)
               else ' <span class="badge off">truncated</span>')
            + "</td>"
            f"<td class=name style='text-align:left'>"
            + _badge(attribution.get("exact", False), "exact",
                     "INEXACT")
            + "<br>" + _attribution_bars(attribution)
            + "</td></tr>")
    out.append("</table>")
    return out


def _observatory_section(observatory: dict) -> list[str]:
    """The saturation / bound / regret panel (observatory payload)."""
    out = ["<h2>saturation observatory</h2>"]
    status = _badge(not observatory.get("partial", False),
                    "ring complete",
                    "PARTIAL: "
                    + observatory.get("partial_reason", ""))
    out.append(
        "<p class=meta>"
        f"schema {_esc(observatory.get('schema', ''))} &middot; "
        f"{observatory.get('windows', 0)} windows of "
        f"{observatory.get('window_s', 0.0) * 1e3:g} ms over "
        f"{observatory.get('horizon_s', 0.0):.6f} s &middot; "
        + status + "</p>")

    series = observatory.get("series", [])
    totals = observatory.get("totals", {})
    horizon = observatory.get("horizon_s", 0.0) or 1.0
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    out.append("<table><tr><th class=name>pool</th>"
               "<th>busy (s)</th><th>share</th>"
               "<th>saturation per window</th></tr>")
    for pool, seconds in ranked[:10]:
        values = [entry.get("saturation", {}).get(pool, 0.0)
                  for entry in series]
        color = "#d1242f" if pool.startswith("wait:") else "#4078c0"
        out.append(f"<tr><td class=name>{_esc(pool)}</td>"
                   f"<td>{seconds:.6f}</td>"
                   f"<td>{seconds / horizon * 100:.1f}%</td>"
                   f"<td style='text-align:left'>"
                   f"{_sparkline(values, color)}</td></tr>")
    out.append("</table>")

    moved = [sum(entry.get("link_bytes", {}).values())
             for entry in series]
    out.append("<p class=meta>bytes moved per window (all links): "
               + _sparkline(moved, "#9a6700") + "</p>")

    by_tenant = observatory.get("bound", {}).get("by_tenant", {})
    if by_tenant:
        classes = sorted({cls for cell in by_tenant.values()
                          for cls in cell})
        out.append("<h3>bound queries by tenant (dominant resource "
                   "class)</h3>")
        out.append("<table><tr><th class=name>tenant</th>"
                   + "".join(f"<th>{_esc(c)}</th>" for c in classes)
                   + "<th>total</th></tr>")
        for tenant in sorted(by_tenant):
            cell = by_tenant[tenant]
            out.append(
                f"<tr><td class=name>{_esc(tenant)}</td>"
                + "".join(f"<td>{cell.get(c, 0)}</td>"
                          for c in classes)
                + f"<td>{sum(cell.values())}</td></tr>")
        out.append("</table>")

    regret = observatory.get("regret", {})
    leaders = regret.get("leaders", [])
    out.append("<h3>placement-regret leaders</h3>")
    if not leaders:
        out.append("<p class=meta>no completed query had plan "
                   "alternatives to regret</p>")
        return out
    out.append("<table><tr><th class=name>query</th>"
               "<th class=name>tenant</th><th class=name>chosen</th>"
               "<th class=name>observed best</th>"
               "<th>regret (ms)</th><th>ratio</th></tr>")
    for entry in leaders:
        out.append(
            f"<tr><td class=name>{_esc(entry.get('name'))}</td>"
            f"<td class=name>{_esc(entry.get('tenant'))}</td>"
            f"<td class=name>{_esc(entry.get('chosen'))}</td>"
            f"<td class=name>{_esc(entry.get('best'))}</td>"
            f"<td>{entry.get('regret_s', 0.0) * 1e3:.6f}</td>"
            f"<td>{entry.get('regret_ratio', 0.0) * 100:.1f}%"
            "</td></tr>")
    out.append("</table>")
    by_tenant_regret = regret.get("by_tenant", {})
    switches = sum(c.get("switch_opportunities", 0)
                   for c in by_tenant_regret.values())
    total = sum(c.get("total_regret_s", 0.0)
                for c in by_tenant_regret.values())
    out.append(f"<p class=meta>total regret {total:.6f} s over "
               f"{len(regret.get('queries', []))} scored queries "
               f"&middot; {switches} switch opportunities "
               "(observed best differs from the chosen variant) "
               "&mdash; the ranking signal for feedback-driven "
               "re-placement</p>")
    return out


def render_dashboard(record: dict,
                     title: str = "Serving dashboard") -> str:
    """Render one serving record as a self-contained HTML page."""
    telemetry = record.get("telemetry", {})
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)} &mdash; {_esc(record.get('name'))}</h1>",
        "<p class=meta>"
        f"schema {_esc(telemetry.get('schema', TELEMETRY_SCHEMA))} "
        f"&middot; {telemetry.get('windows', 0)} windows of "
        f"{telemetry.get('window_s', 0.0) * 1e3:g} ms &middot; "
        f"simulated {record.get('sim_time_s', 0.0):.6f} s &middot; "
        f"digest <code>"
        f"{_esc(record.get('telemetry_digest', '')[:16])}&hellip;"
        "</code></p>",
        _kpis(record),
    ]
    tenants = telemetry.get("tenants", {})
    for name in sorted(tenants):
        parts += _tenant_section(name, tenants[name])
    observatory = record.get("observatory")
    if observatory:
        parts += _observatory_section(observatory)
    parts += _alerts_section(telemetry.get("alerts", []),
                             telemetry.get("window_s", 0.0))
    parts += _exemplars_section(telemetry.get("exemplars", []))
    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(path: str, record: dict,
                    title: str = "Serving dashboard"
                    ) -> tuple[str, str]:
    """Write the HTML dashboard and its telemetry JSON twin.

    The JSON lands next to the HTML (same basename, ``.json``) and
    carries the raw ``repro.serve-telemetry/v1`` payload plus the
    digest, for ``bench --serve --compare`` and CI consumption.
    """
    html_text = render_dashboard(record, title=title)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html_text)
    json_path = os.path.splitext(path)[0] + ".json"
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump({"schema": TELEMETRY_SCHEMA,
                   "name": record.get("name", ""),
                   "digest": record.get("telemetry_digest", ""),
                   "telemetry": record.get("telemetry", {}),
                   "observatory": record.get("observatory", {}),
                   "observatory_digest":
                       record.get("observatory_digest", "")},
                  fh, indent=1, sort_keys=True)
        fh.write("\n")
    return path, json_path
