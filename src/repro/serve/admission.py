"""Admission control: bounded queue + load shedding with retry-after.

A server that accepts every request melts down under overload; a
server that drops silently wastes the client's timeout.  The
controller bounds the waiting room and, when it sheds, computes an
honest *retry-after* hint from the backlog it can see: the queued
service demand divided by the server's drain rate.  Clients (and the
load generators) treat the hint as simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionController", "AdmissionDecision"]


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict for one arriving query."""

    admitted: bool
    retry_after_s: float = 0.0
    reason: str = ""


class AdmissionController:
    """Bounded waiting room with backlog-proportional retry hints."""

    def __init__(self, max_queue: int, max_concurrency: int,
                 min_retry_after_s: float = 1e-3):
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        self.max_queue = max_queue
        self.max_concurrency = max_concurrency
        self.min_retry_after_s = min_retry_after_s
        self.admitted = 0
        self.shed = 0

    def decide(self, queued: int, running: int,
               backlog_cost_s: float) -> AdmissionDecision:
        """Admit or shed given the current queue/running occupancy.

        ``backlog_cost_s`` is the summed service-time estimate of the
        queued requests; the retry hint is the time the backlog needs
        to drain through ``max_concurrency`` execution slots.
        """
        if queued >= self.max_queue:
            self.shed += 1
            drain = backlog_cost_s / self.max_concurrency
            retry = max(self.min_retry_after_s, drain)
            return AdmissionDecision(
                admitted=False, retry_after_s=retry,
                reason=f"queue full ({queued}/{self.max_queue} "
                       f"waiting, {running} running)")
        self.admitted += 1
        return AdmissionDecision(admitted=True)

    def counters(self) -> dict[str, int]:
        return {"admitted": self.admitted, "shed": self.shed}
