"""Tenant classes and their arrival processes.

A :class:`TenantClass` bundles everything the server needs to know
about one population of users: its fair-queueing weight, its latency
SLO, which query templates it runs (with weights), and how its
queries arrive — an *open* process (poisson / bursty / diurnal:
arrivals do not wait for completions) or a *closed* one (a fixed
population of clients, each submitting, waiting, thinking, and
submitting again).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ArrivalSpec", "TenantClass"]

ARRIVAL_KINDS = ("poisson", "bursty", "diurnal", "closed")


@dataclass(frozen=True)
class ArrivalSpec:
    """How one tenant's queries arrive (all rates in queries/s).

    ``poisson``: homogeneous arrivals at ``rate``.
    ``bursty``: Markov-modulated on/off — ``rate`` during bursts,
    ``rate_off`` between them, exponential phase lengths with means
    ``mean_on`` / ``mean_off``.
    ``diurnal``: sinusoidal rate ``rate * (1 + amplitude *
    sin(2*pi*t/period))``.
    ``closed``: ``population`` clients, each waiting for its previous
    query and thinking for an exponential ``think_s`` before the next.
    """

    kind: str = "poisson"
    rate: float = 50.0
    rate_off: float = 0.0
    mean_on: float = 0.05
    mean_off: float = 0.05
    amplitude: float = 0.8
    period: float = 1.0
    population: int = 4
    think_s: float = 0.01

    def __post_init__(self):
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(f"unknown arrival kind {self.kind!r} "
                             f"(have {ARRIVAL_KINDS})")
        if self.kind == "closed" and self.population < 1:
            raise ValueError("closed populations need >= 1 client")

    @property
    def is_open(self) -> bool:
        return self.kind != "closed"


@dataclass
class TenantClass:
    """One tenant population sharing the served fabric.

    ``weight`` is the fair-queueing share; ``slo_s`` the per-query
    latency SLO (arrival to completion, simulated seconds);
    ``slo_target`` the fraction of completions that must meet it
    (the error budget the burn-rate monitor spends against);
    ``templates`` maps template names to draw weights.
    """

    name: str
    weight: float = 1.0
    slo_s: float = 0.1
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    templates: dict[str, float] = field(default_factory=dict)
    seed: int = 0
    slo_target: float = 0.99

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be "
                             "positive")
        if self.slo_s <= 0:
            raise ValueError(f"tenant {self.name!r}: slo_s must be "
                             "positive")
        if not 0.0 < self.slo_target <= 1.0:
            raise ValueError(f"tenant {self.name!r}: slo_target must "
                             "be in (0, 1]")
        if not self.templates:
            raise ValueError(f"tenant {self.name!r}: needs at least "
                             "one template")

    def draw_templates(self, n: int) -> list[str]:
        """``n`` template names drawn by weight (seeded per tenant)."""
        import numpy as np
        rng = np.random.default_rng(self.seed)
        names = sorted(self.templates)
        probabilities = np.array([self.templates[t] for t in names],
                                 dtype=float)
        probabilities /= probabilities.sum()
        picks = rng.choice(len(names), size=n, p=probabilities)
        return [names[i] for i in picks]
