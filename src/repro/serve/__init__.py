"""Multi-tenant query serving: the long-lived server mode.

The paper's engines are long-lived streaming data-flow processors,
not one-shot query runners; this package makes the reproduction
behave that way.  A :class:`~repro.serve.server.QueryServer` keeps
one warm fabric + catalog and serves whole simulated user
populations through three layers:

* **admission control** — a bounded queue with load shedding and
  retry-after hints (:mod:`repro.serve.admission`);
* **per-tenant weighted fair queueing** — start-time fair queueing
  over tenant classes so no tenant starves
  (:mod:`repro.serve.fairqueue`);
* **plan caching** — repeat queries skip optimization entirely via a
  cache keyed on (query, schema, placement context)
  (:mod:`repro.serve.plancache`).

Admitted queries run through the existing interference-aware
:class:`~repro.scheduler.scheduler.QueryExecutor` on the shared
fabric.  The :mod:`repro.serve.frontend` module adds the asyncio
front-end: client populations are ``asyncio`` tasks submitting over
a deterministic virtual-time bridge, so serving runs are bit-
reproducible under a fixed seed.
"""

from .admission import AdmissionController, AdmissionDecision
from .dashboard import render_dashboard, write_dashboard
from .fairqueue import WeightedFairQueue
from .frontend import AsyncFrontEnd, ShedResponse
from .loadgen import Arrival, open_arrivals, schedule_for
from .plancache import PlanCache, fabric_fingerprint, plan_fingerprint, \
    schema_fingerprint
from .scenarios import SERVE_SCENARIOS, run_scenario, \
    scenario_schedule, serve_scenario_server, serve_templates
from .server import QueryServer, ServeConfig, ServeRecord
from .telemetry import QuantileSketch, ServeTelemetry, \
    TELEMETRY_SCHEMA
from .tenants import ArrivalSpec, TenantClass

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Arrival",
    "ArrivalSpec",
    "AsyncFrontEnd",
    "PlanCache",
    "QuantileSketch",
    "QueryServer",
    "SERVE_SCENARIOS",
    "ServeConfig",
    "ServeRecord",
    "ServeTelemetry",
    "ShedResponse",
    "TELEMETRY_SCHEMA",
    "TenantClass",
    "WeightedFairQueue",
    "fabric_fingerprint",
    "open_arrivals",
    "plan_fingerprint",
    "render_dashboard",
    "run_scenario",
    "scenario_schedule",
    "schedule_for",
    "schema_fingerprint",
    "serve_scenario_server",
    "serve_templates",
    "write_dashboard",
]
