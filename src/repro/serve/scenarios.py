"""Named serving scenarios: tenants, templates, and the runner.

Each scenario bundles a tenant mix (arrival processes, weights,
SLOs), the query templates they draw from, and the server knobs —
everything :func:`run_scenario` needs to serve the workload
end-to-end on one warm fabric and emit the ``repro.bench/v3``
serving record.

Verification is built in: after the run, every *distinct template*
that completed is executed once standalone (Volcano engine, fresh
fabric — exactly what ``repro query`` does) and every served record's
checksum must match its template's oracle bit for bit.  Serving a
query concurrently under fair queueing, rate limiting, and the plan
cache must not change its answer.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..engine import AggSpec, Query, VolcanoEngine
from ..hardware import build_fabric, dataflow_spec
from ..obs import table_checksum
from ..relational import (
    Catalog,
    col,
    make_lineitem,
    make_orders,
    make_uniform_table,
)
from .frontend import AsyncFrontEnd, ShedResponse
from .loadgen import schedule_for
from .server import QueryServer, ServeConfig
from .tenants import ArrivalSpec, TenantClass

__all__ = ["SERVE_SCENARIOS", "ServeScenario", "serve_templates",
           "run_scenario", "serve_scenario_server"]

_CHUNK = 1000

# Serving runs re-submit the same templates thousands of times, so
# the catalog is memoized per row count just like the bench harness
# does (generators are seeded; tables are treated as immutable).
_CATALOG_CACHE: dict[int, Catalog] = {}


def _make_catalog(rows: int) -> Catalog:
    catalog = _CATALOG_CACHE.get(rows)
    if catalog is None:
        catalog = Catalog()
        catalog.register("lineitem", make_lineitem(rows,
                                                   orders=rows // 4,
                                                   chunk_rows=_CHUNK))
        catalog.register("orders", make_orders(rows // 4,
                                               chunk_rows=_CHUNK))
        catalog.register("uniform", make_uniform_table(rows, columns=3,
                                                       distinct=50,
                                                       chunk_rows=_CHUNK))
        _CATALOG_CACHE[rows] = catalog
    return catalog


def serve_templates() -> dict[str, Callable[[], Query]]:
    """The query templates tenants draw from.

    Factories, not instances: every submission builds a fresh plan
    (node ids are globally unique), and the plan cache proves the
    fresh instances fingerprint identically.
    """
    return {
        "count_hot": lambda: (
            Query.scan("uniform")
            .filter(col("k0") < 5)
            .aggregate([], [AggSpec("count", alias="n")])),
        "filter_project": lambda: (
            Query.scan("lineitem")
            .filter(col("l_quantity") > 40)
            .project(["l_orderkey", "l_extendedprice"])),
        "group_by_flag": lambda: (
            Query.scan("lineitem")
            .filter(col("l_shipdate").between(8500, 10500))
            .aggregate(["l_returnflag"],
                       [AggSpec("sum", "l_extendedprice", "revenue"),
                        AggSpec("count", alias="n")])),
        "topk": lambda: (
            Query.scan("uniform")
            .filter(col("k0") < 25)
            .sort(["k0", "k1"])
            .limit(100)),
        "join_priority": lambda: (
            Query.scan("lineitem")
            .filter(col("l_quantity") > 10)
            .join(Query.scan("orders")
                  .filter(col("o_priority") <= 2),
                  "l_orderkey", "o_orderkey")
            .aggregate(["o_priority"],
                       [AggSpec("sum", "l_extendedprice", "rev")])),
    }


@dataclass(frozen=True)
class ServeScenario:
    """One named serving workload."""

    name: str
    description: str
    rows: int
    queries: int                       # default total across tenants
    config: ServeConfig
    build_tenants: Callable[[int], "tuple[list[TenantClass], dict[str, int]]"]
    """``build_tenants(n)`` -> (tenants, per-tenant query counts)."""


def _split(n: int, fractions: dict[str, float]) -> dict[str, int]:
    """Per-tenant counts; ceiling split so the total is >= ``n``."""
    return {name: max(1, -(-int(n * frac * 1000) // 1000))
            for name, frac in fractions.items()}


def _two_tenant_bursty(n: int):
    tenants = [
        TenantClass(
            name="gold", weight=3.0, slo_s=0.0012, seed=11,
            arrival=ArrivalSpec(kind="bursty", rate=20000.0,
                                rate_off=500.0, mean_on=0.01,
                                mean_off=0.02),
            templates={"count_hot": 2.0, "filter_project": 1.0}),
        TenantClass(
            name="bronze", weight=1.0, slo_s=0.004, seed=12,
            arrival=ArrivalSpec(kind="poisson", rate=2000.0),
            templates={"group_by_flag": 2.0, "topk": 1.0}),
    ]
    return tenants, _split(n, {"gold": 0.6, "bronze": 0.4})


def _three_tenant_mix(n: int):
    tenants = [
        TenantClass(
            name="gold", weight=4.0, slo_s=0.0012, seed=21,
            arrival=ArrivalSpec(kind="closed", population=6,
                                think_s=0.002),
            templates={"count_hot": 3.0, "filter_project": 1.0}),
        TenantClass(
            name="silver", weight=2.0, slo_s=0.002, seed=22,
            arrival=ArrivalSpec(kind="diurnal", rate=3000.0,
                                amplitude=0.8, period=0.1),
            templates={"filter_project": 1.0, "group_by_flag": 1.0}),
        TenantClass(
            name="bronze", weight=1.0, slo_s=0.006, seed=23,
            arrival=ArrivalSpec(kind="bursty", rate=8000.0,
                                rate_off=200.0, mean_on=0.015,
                                mean_off=0.03),
            templates={"group_by_flag": 1.0, "topk": 1.0,
                       "join_priority": 0.5}),
    ]
    return tenants, _split(n, {"gold": 0.4, "silver": 0.35,
                               "bronze": 0.25})


def _overload_shed(n: int):
    tenants = [
        TenantClass(
            name="flood", weight=1.0, slo_s=0.004, seed=31,
            arrival=ArrivalSpec(kind="poisson", rate=25000.0),
            templates={"count_hot": 1.0, "topk": 1.0}),
        TenantClass(
            name="steady", weight=4.0, slo_s=0.008, seed=32,
            arrival=ArrivalSpec(kind="poisson", rate=500.0),
            templates={"group_by_flag": 1.0}),
    ]
    return tenants, _split(n, {"flood": 0.85, "steady": 0.15})


SERVE_SCENARIOS: dict[str, ServeScenario] = {
    "two_tenant_bursty": ServeScenario(
        name="two_tenant_bursty",
        description="Gold bursty bursts against bronze's steady "
                    "poisson stream; both open-loop.",
        rows=2000, queries=200,
        config=ServeConfig(max_concurrency=4, max_queue=32),
        build_tenants=_two_tenant_bursty),
    "three_tenant_mix": ServeScenario(
        name="three_tenant_mix",
        description="Closed-loop gold population + diurnal silver + "
                    "bursty bronze (with joins) — the acceptance "
                    "workload.",
        rows=2000, queries=1000,
        config=ServeConfig(max_concurrency=4, max_queue=48),
        build_tenants=_three_tenant_mix),
    "overload_shed": ServeScenario(
        name="overload_shed",
        description="A flooding tenant against a tiny waiting room: "
                    "admission control must shed, the steady tenant "
                    "must still get through.",
        rows=2000, queries=300,
        config=ServeConfig(max_concurrency=2, max_queue=8),
        build_tenants=_overload_shed),
}


# -- populations -----------------------------------------------------------

async def _open_population(front: AsyncFrontEnd, arrivals) -> None:
    """Replay a pre-materialized open-tenant schedule.

    Open-loop clients do not wait before submitting (that is the
    definition), so every arrival is registered up front and the
    population just gathers the responses — shed queries simply keep
    their ShedResponse; open processes do not retry.
    """
    futures = [front.submit(a.tenant, a.template, at=a.time)
               for a in arrivals]
    if futures:
        await asyncio.gather(*futures)


async def _closed_client(front: AsyncFrontEnd, tenant: TenantClass,
                         client_id: int, quota: int) -> None:
    """One closed-loop client: submit, await, think, repeat."""
    rng = np.random.default_rng((tenant.seed, client_id))
    spec = tenant.arrival
    names = sorted(tenant.templates)
    probabilities = np.array([tenant.templates[t] for t in names])
    probabilities = probabilities / probabilities.sum()
    done = 0
    while done < quota:
        template = names[rng.choice(len(names), p=probabilities)]
        response = await front.submit(tenant.name, template)
        if isinstance(response, ShedResponse):
            # Honor the server's retry-after hint, then try again;
            # the retried submission is a new query (new record).
            await front.sleep_until(
                front.now + response.retry_after_s)
            continue
        done += 1
        think = rng.exponential(spec.think_s)
        await front.sleep_until(front.now + think)


def _populations(front: AsyncFrontEnd, tenants: list[TenantClass],
                 counts: dict[str, int]) -> list:
    populations = [_open_population(
        front, schedule_for(tenants, counts))]
    for tenant in tenants:
        if tenant.arrival.is_open:
            continue
        spec = tenant.arrival
        count = counts[tenant.name]
        quota = max(1, -(-count // spec.population))
        populations.extend(
            _closed_client(front, tenant, client_id, quota)
            for client_id in range(spec.population))
    return populations


# -- the runner ------------------------------------------------------------

def _verify_against_oracle(server: QueryServer, rows: int) -> dict:
    """Standalone-oracle check: served answers == ``repro query``.

    One Volcano run per *distinct completed template* (fresh fabric,
    same catalog) yields the oracle checksum; every served record of
    that template must match it exactly.
    """
    catalog = _make_catalog(rows)
    templates = serve_templates()
    completed = [r for r in server.records if r.completed]
    oracle: dict[str, str] = {}
    for template in sorted({r.template for r in completed}):
        fabric = build_fabric(dataflow_spec())
        result = VolcanoEngine(fabric, catalog).execute(
            templates[template]())
        oracle[template] = table_checksum(result.table)
    mismatches = [
        f"{r.name}: served {r.checksum[:12]}... != oracle "
        f"{oracle[r.template][:12]}..."
        for r in completed if r.checksum != oracle[r.template]]
    if mismatches:
        raise AssertionError(
            "served results diverge from standalone oracle runs:\n  "
            + "\n  ".join(mismatches[:10]))
    return {"templates": oracle, "queries_checked": len(completed),
            "mismatches": 0}


def serve_scenario_server(name: str, rows: Optional[int] = None,
                          queries: Optional[int] = None,
                          config: Optional[ServeConfig] = None
                          ) -> QueryServer:
    """Serve one named scenario; return the drained server.

    The lower-level entry point behind :func:`run_scenario`, for
    callers that need the live server (its fabric trace, telemetry
    object, records) rather than the JSON record — e.g. ``repro
    trace --serve`` exporting the multi-query event ring.
    """
    scenario = SERVE_SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(f"unknown serve scenario {name!r} "
                         f"(have {sorted(SERVE_SCENARIOS)})")
    rows = rows if rows is not None else scenario.rows
    n = queries if queries is not None else scenario.queries
    config = config if config is not None else scenario.config
    catalog = _make_catalog(rows)
    fabric = build_fabric(dataflow_spec())
    tenants, counts = scenario.build_tenants(n)
    server = QueryServer(fabric, catalog, tenants,
                         serve_templates(), config)
    front = AsyncFrontEnd(server)
    front.serve(_populations(front, tenants, counts))
    if not server.idle:
        raise RuntimeError("server not idle after serving run")
    return server


def run_scenario(name: str, rows: Optional[int] = None,
                 queries: Optional[int] = None,
                 config: Optional[ServeConfig] = None,
                 verify: bool = True) -> dict:
    """Serve one named scenario end-to-end; return the v3 record.

    With ``verify`` (the default) the run also asserts zero
    accounting violations, zero telemetry violations, and
    bit-identical checksums against standalone oracle runs — the
    serve-smoke CI contract.
    """
    scenario = SERVE_SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(f"unknown serve scenario {name!r} "
                         f"(have {sorted(SERVE_SCENARIOS)})")
    rows = rows if rows is not None else scenario.rows
    n = queries if queries is not None else scenario.queries

    started = time.perf_counter()
    server = serve_scenario_server(name, rows=rows, queries=n,
                                   config=config)
    record = server.report(scenario.name,
                           wall_time_s=time.perf_counter() - started)
    record["rows"] = rows
    # The *requested* total, as distinct from the submitted count
    # (ceiling splits and closed-loop retries can push ``queries``
    # above it); `repro bench --compare` re-runs with this value.
    record["requested_queries"] = n
    record["description"] = scenario.description
    violations = server.accounting_violations()
    record["accounting_violations"] = violations
    record["telemetry_violations"] = server.telemetry_violations()
    record["observatory_violations"] = server.observatory_violations()
    if verify:
        if violations:
            raise AssertionError(
                "serving accounting violations:\n  "
                + "\n  ".join(violations[:10]))
        if record["telemetry_violations"]:
            raise AssertionError(
                "serving telemetry violations:\n  "
                + "\n  ".join(record["telemetry_violations"][:10]))
        if record["observatory_violations"]:
            raise AssertionError(
                "serving observatory violations:\n  "
                + "\n  ".join(record["observatory_violations"][:10]))
        record["verification"] = _verify_against_oracle(server, rows)
    return record


def scenario_schedule(name: str, queries: Optional[int] = None
                      ) -> "tuple[list[TenantClass], dict[str, int]]":
    """The tenant mix + counts for ``repro loadgen``."""
    scenario = SERVE_SCENARIOS.get(name)
    if scenario is None:
        raise ValueError(f"unknown serve scenario {name!r} "
                         f"(have {sorted(SERVE_SCENARIOS)})")
    n = queries if queries is not None else scenario.queries
    return scenario.build_tenants(n)
